"""Telemetry: metrics, structured events, spans and sketch health.

Every layer of the reproduction accepts an optional ``telemetry``
argument (default ``None`` — instrumentation disabled, zero overhead
beyond a branch per bulk operation):

* data plane — :class:`~repro.core.fcm.FCMSketch` counts ingested
  packets and queries, and :meth:`~repro.core.fcm.FCMSketch
  .emit_state` publishes per-stage occupancy and overflow/saturation
  gauges straight from the trees;
* control plane — :class:`~repro.controlplane.collector
  .SketchCollector` / :class:`~repro.controlplane.collector
  .NetworkSketchCollector` emit one event per drained window
  (reusing :class:`~repro.robustness.policy.CollectionHealth`), and
  :class:`~repro.core.em.EMEstimator` reports iterations and
  convergence;
* network — :class:`~repro.network.simulator.NetworkSimulator` counts
  routed/dropped packets and surviving switches per window.

On top of the flat metrics/events layer sit two observability tools:

* **tracing** (:mod:`repro.telemetry.tracing`) — hierarchical
  :class:`Span` records with deterministic counter ids, opened through
  :meth:`MetricsRegistry.span`; one trace reconstructs a measurement
  window end to end (simulator routing → per-switch drain → EM);
* **health** (:mod:`repro.telemetry.health`) — a
  :class:`SketchHealthMonitor` that turns stage-1 occupancy, saturation
  gauges, Linear-Counting cardinality and the §5 error bounds into a
  per-window ``healthy``/``degraded``/``saturated`` verdict;
* **the observability plane** (:mod:`repro.telemetry.obsplane`) — a
  registry :class:`Scraper` feeding bounded time series, OpenMetrics /
  NDJSON exposition, multi-window burn-rate SLO alerting, exact-oracle
  accuracy audits and the ``repro obs`` ASCII dashboard.

Event streams carry sequence numbers instead of timestamps, so runs
with fixed seeds are byte-comparable — see :mod:`repro.telemetry
.events`.  The observability guide lives in ``docs/OBSERVABILITY.md``;
quickstarts in ``examples/telemetry_monitoring.py`` and
``examples/pipeline_tracing.py``.
"""

from repro.telemetry.events import (
    FilterExporter,
    MemoryExporter,
    NDJSONExporter,
    TeeExporter,
    TelemetryEvent,
)
from repro.telemetry.quantiles import BucketQuantiles, P2Quantile
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.telemetry.tracing import (
    Span,
    SpanNode,
    Tracer,
    build_trace_trees,
    maybe_span,
    read_spans,
    render_trace_tree,
)

# The health monitor consumes the robustness layer (DegradationLevel,
# CollectionHealth), which in turn builds on repro.core — importing it
# eagerly here would close an import cycle (core.em imports this
# package).  PEP 562 lazy attributes keep
# ``from repro.telemetry import SketchHealthMonitor`` working without
# the cycle.
_HEALTH_EXPORTS = (
    "HealthStatus",
    "HealthThresholds",
    "SketchHealthMonitor",
    "SketchHealthReport",
)

# The observability plane stays lazy for the same reason (its audit
# module pulls numpy and the plane is optional tooling for most
# library users).
_OBSPLANE_EXPORTS = (
    "AccuracyAuditor",
    "ObservabilityPlane",
    "Scraper",
    "SeriesStore",
    "SloObjective",
    "SloTracker",
    "default_service_slos",
    "parse_openmetrics",
    "profile_spans",
    "render_openmetrics",
)


def __getattr__(name):
    if name in _HEALTH_EXPORTS:
        from repro.telemetry import health

        return getattr(health, name)
    if name in _OBSPLANE_EXPORTS:
        from repro.telemetry import obsplane

        return getattr(obsplane, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AccuracyAuditor",
    "BucketQuantiles",
    "Counter",
    "FilterExporter",
    "Gauge",
    "HealthStatus",
    "HealthThresholds",
    "Histogram",
    "MemoryExporter",
    "MetricsRegistry",
    "NDJSONExporter",
    "ObservabilityPlane",
    "P2Quantile",
    "Scraper",
    "SeriesStore",
    "SketchHealthMonitor",
    "SketchHealthReport",
    "SloObjective",
    "SloTracker",
    "Span",
    "SpanNode",
    "TeeExporter",
    "TelemetryEvent",
    "Timer",
    "Tracer",
    "build_trace_trees",
    "default_service_slos",
    "maybe_span",
    "parse_openmetrics",
    "profile_spans",
    "read_spans",
    "render_openmetrics",
    "render_trace_tree",
]
