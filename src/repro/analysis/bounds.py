"""Analytic accuracy bounds (Theorem 5.1, Theorem 6.1, Lemma B.1).

These functions compute the paper's error bounds so experiments can
check the empirical error against theory:

* Count-Min:        x̂ <= x + eps * ||x||_1             w.p. 1 - delta
* FCM (Thm 5.1):    x̂ <= x + eps * ||x||_1
                         + eps * (D-1) * (||x||_1 - w1*theta1)+
* FCM general
  (Lemma B.1):      x̂ <= x + eps * max_xi (xi*||x||_1 - w1*eta_xi)
* FCM+TopK
  (Thm 6.1):        same with ||x||_1 replaced by the residual volume
                    after the Top-K filter.

with ``eps = e / w1`` and ``delta = e^-d`` for ``d`` trees.
"""

from __future__ import annotations

import math
from typing import Sequence


def eta(xi: int, k: int, thetas: Sequence[int]) -> float:
    """Eqn. 7: the minimum overestimate absorbed by a degree-xi merge.

    ``eta_xi = sum_{j=1..ceil(log_k xi)} (ceil(xi / k^(j-1)) - 1) * theta_j``

    Args:
        xi: virtual counter degree.
        k: tree arity.
        thetas: per-stage counting ranges ``2^b_l - 2``.
    """
    if xi < 1:
        raise ValueError("degree must be at least 1")
    if xi == 1:
        return 0.0
    depth = math.ceil(math.log(xi, k))
    total = 0.0
    for j in range(1, depth + 1):
        if j - 1 >= len(thetas):
            break
        total += (math.ceil(xi / (k ** (j - 1))) - 1) * thetas[j - 1]
    return total


def cm_error_bound(total_packets: float, width: int) -> float:
    """Count-Min additive error bound ``eps * ||x||_1``, eps = e/w."""
    if width <= 0:
        raise ValueError("width must be positive")
    return (math.e / width) * total_packets


def fcm_error_bound(total_packets: float, w1: int, theta1: int,
                    max_degree: int) -> float:
    """Theorem 5.1's additive error term.

    ``eps*||x||_1 + eps*(D-1)*(||x||_1 - w1*theta1) * I{...}`` with
    ``eps = e / w1``.
    """
    if w1 <= 0 or theta1 <= 0 or max_degree < 1:
        raise ValueError("invalid parameters")
    eps = math.e / w1
    bound = eps * total_packets
    excess = total_packets - w1 * theta1
    if excess > 0:
        bound += eps * (max_degree - 1) * excess
    return bound


def fcm_general_error_bound(total_packets: float, w1: int, k: int,
                            thetas: Sequence[int],
                            max_degree: int) -> float:
    """Lemma B.1's tighter bound ``eps * max_xi(xi*||x||_1 - w1*eta_xi)``."""
    if max_degree < 1:
        raise ValueError("max_degree must be at least 1")
    eps = math.e / w1
    best = -math.inf
    for xi in range(1, max_degree + 1):
        best = max(best, xi * total_packets - w1 * eta(xi, k, thetas))
    return eps * max(best, 0.0)


def fcm_topk_error_bound(residual_packets: float, w1: int, theta1: int,
                         max_degree: int) -> float:
    """Theorem 6.1: Theorem 5.1 with the post-filter volume ||x_L||_1."""
    return fcm_error_bound(residual_packets, w1, theta1, max_degree)


def recommended_parameters(epsilon: float, delta: float) -> tuple[int, int]:
    """Size an FCM-Sketch for accuracy targets: ``w1 = ceil(e / eps)``
    leaves and ``d = ceil(ln(1/delta))`` trees (Theorem 5.1)."""
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ValueError("epsilon and delta must be in (0, 1)")
    return math.ceil(math.e / epsilon), math.ceil(math.log(1.0 / delta))
