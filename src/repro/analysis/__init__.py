"""Analytical error bounds (§5, §6, Appendix B)."""

from repro.analysis.bounds import (
    cm_error_bound,
    eta,
    fcm_error_bound,
    fcm_general_error_bound,
    fcm_topk_error_bound,
    recommended_parameters,
)

__all__ = [
    "eta",
    "cm_error_bound",
    "fcm_error_bound",
    "fcm_general_error_bound",
    "fcm_topk_error_bound",
    "recommended_parameters",
]
