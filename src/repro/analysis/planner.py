"""Capacity planning from the accuracy analysis (§5).

Theorem 5.1 ties FCM's additive error to the stage-1 width ``w1``
(``eps = e / w1``) and its failure probability to the tree count
(``delta = e^-d``).  This module inverts that relationship into a
deployment planner: given accuracy targets and an expected traffic
volume, produce a concrete :class:`~repro.core.config.FCMConfig` and
predict the error it will deliver — the sizing workflow a network
operator would actually run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.bounds import fcm_error_bound, recommended_parameters
from repro.core.config import FCMConfig


@dataclass(frozen=True)
class Plan:
    """A sizing recommendation.

    Attributes:
        config: the derived FCM configuration (widths set).
        epsilon: the per-packet error fraction the config guarantees.
        delta: the error probability (``e^-num_trees``).
        predicted_error: Theorem 5.1's additive bound for the given
            expected volume.
        overflow_safe_volume: ``w1 * theta1`` — below this packet
            volume the degree term of the bound vanishes entirely.
    """

    config: FCMConfig
    epsilon: float
    delta: float
    predicted_error: float
    overflow_safe_volume: int

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"{self.config.describe()}\n"
            f"guarantee: error <= {self.epsilon:.2e} * volume with "
            f"probability >= {1 - self.delta:.3f}\n"
            f"predicted additive error at the planned volume: "
            f"{self.predicted_error:.1f} packets\n"
            f"degree-term-free up to {self.overflow_safe_volume:,} "
            f"packets"
        )


def plan_for_accuracy(epsilon: float, delta: float,
                      expected_packets: int,
                      k: int = 8,
                      stage_bits: tuple = (8, 16, 32),
                      max_degree: int = 4) -> Plan:
    """Size an FCM-Sketch for accuracy targets.

    Args:
        epsilon: target error fraction (x̂ <= x + eps * volume).
        delta: acceptable probability of exceeding the bound.
        expected_packets: planned measurement-window volume.
        k: tree arity (paper default 8).
        stage_bits: counter-width ladder.
        max_degree: assumed maximum virtual-counter degree for the
            degree term of Theorem 5.1 (conservative default).
    """
    if expected_packets <= 0:
        raise ValueError("expected_packets must be positive")
    w1_needed, num_trees = recommended_parameters(epsilon, delta)
    granule = k ** (len(stage_bits) - 1)
    w1 = math.ceil(w1_needed / granule) * granule
    widths = tuple(w1 // (k ** level)
                   for level in range(len(stage_bits)))
    config = FCMConfig(num_trees=num_trees, k=k,
                       stage_bits=tuple(stage_bits),
                       stage_widths=widths)
    return _plan_from_config(config, expected_packets, max_degree)


def plan_for_memory(memory_bytes: int, expected_packets: int,
                    num_trees: int = 2, k: int = 8,
                    stage_bits: tuple = (8, 16, 32),
                    max_degree: int = 4) -> Plan:
    """Predict the accuracy a memory budget buys (the inverse view)."""
    if expected_packets <= 0:
        raise ValueError("expected_packets must be positive")
    config = FCMConfig(num_trees=num_trees, k=k,
                       stage_bits=tuple(stage_bits)) \
        .with_memory(memory_bytes)
    return _plan_from_config(config, expected_packets, max_degree)


def _plan_from_config(config: FCMConfig, expected_packets: int,
                      max_degree: int) -> Plan:
    w1 = config.leaf_width
    theta1 = config.counting_ranges[0]
    epsilon = math.e / w1
    delta = math.exp(-config.num_trees)
    predicted = fcm_error_bound(expected_packets, w1, theta1, max_degree)
    return Plan(
        config=config,
        epsilon=epsilon,
        delta=delta,
        predicted_error=predicted,
        overflow_safe_volume=w1 * theta1,
    )


def memory_for_accuracy(epsilon: float, delta: float, k: int = 8,
                        stage_bits: tuple = (8, 16, 32)) -> int:
    """Bytes needed to hit (epsilon, delta) — a convenience scalar."""
    plan = plan_for_accuracy(epsilon, delta, expected_packets=1, k=k,
                             stage_bits=stage_bits)
    return plan.config.memory_bytes
