"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.sketch == "fcm"
        assert args.workload == "caida"

    def test_zipf_options(self):
        args = build_parser().parse_args(
            ["evaluate", "--workload", "zipf", "--alpha", "1.5"]
        )
        assert args.alpha == 1.5


class TestCommands:
    def test_evaluate_fcm(self, capsys):
        code = main(["evaluate", "--packets", "20000",
                     "--memory-kb", "16", "--em-iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "are" in out and "cardinality_re" in out

    def test_evaluate_rejects_unknown_sketch(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "--sketch", "nope",
                  "--packets", "1000", "--memory-kb", "16"])

    def test_compare(self, capsys):
        code = main(["compare", "--packets", "20000",
                     "--memory-kb", "16", "--sketches", "cm,fcm"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cm" in out and "fcm" in out

    def test_resources(self, capsys):
        code = main(["resources", "--memory-kb", "1300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FCM-Sketch" in out and "switch.p4" in out


class TestTelemetryExports:
    def test_trace_out_writes_spans_only(self, tmp_path, capsys):
        events = tmp_path / "events.ndjson"
        spans = tmp_path / "spans.ndjson"
        code = main(["evaluate", "--packets", "20000",
                     "--memory-kb", "16", "--em-iterations", "2",
                     "--telemetry-out", str(events),
                     "--trace-out", str(spans)])
        assert code == 0
        span_records = [json.loads(line)
                        for line in spans.read_text().splitlines()]
        assert span_records, "no spans exported"
        assert all(r["kind"] == "span" for r in span_records)
        # The spans-only stream keeps the full stream's sequence
        # numbers, so the two files correlate line for line.
        full = {json.loads(line)["seq"]: json.loads(line)
                for line in events.read_text().splitlines()}
        for record in span_records:
            assert full[record["seq"]] == record
        out = capsys.readouterr().out
        assert out.count("telemetry:") == 2  # one summary per sink

    def test_trace_out_alone_works(self, tmp_path):
        spans = tmp_path / "spans.ndjson"
        code = main(["evaluate", "--packets", "20000",
                     "--memory-kb", "16", "--em-iterations", "2",
                     "--trace-out", str(spans)])
        assert code == 0
        names = {json.loads(line)["name"]
                 for line in spans.read_text().splitlines()}
        assert "fcm.ingest" in names and "em.run" in names

    def test_telemetry_report_renders_tables(self, tmp_path, capsys):
        path = tmp_path / "run.ndjson"
        code = main(["evaluate", "--packets", "20000",
                     "--memory-kb", "16", "--em-iterations", "2",
                     "--telemetry-out", str(path)])
        assert code == 0
        capsys.readouterr()
        code = main(["telemetry-report", str(path), "--traces"])
        assert code == 0
        out = capsys.readouterr().out
        assert "EM convergence" in out
        assert "slow spans" in out
        assert "trace(s)" in out

    def test_telemetry_report_missing_file_errors(self, tmp_path, capsys):
        code = main(["telemetry-report", str(tmp_path / "nope.ndjson")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_telemetry_report_malformed_line_errors(self, tmp_path,
                                                    capsys):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"kind": "em"}\nnot json\n')
        code = main(["telemetry-report", str(path)])
        assert code == 1
        assert "line 2" in capsys.readouterr().err
