"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.sketch == "fcm"
        assert args.workload == "caida"

    def test_zipf_options(self):
        args = build_parser().parse_args(
            ["evaluate", "--workload", "zipf", "--alpha", "1.5"]
        )
        assert args.alpha == 1.5


class TestCommands:
    def test_evaluate_fcm(self, capsys):
        code = main(["evaluate", "--packets", "20000",
                     "--memory-kb", "16", "--em-iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "are" in out and "cardinality_re" in out

    def test_evaluate_rejects_unknown_sketch(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "--sketch", "nope",
                  "--packets", "1000", "--memory-kb", "16"])

    def test_compare(self, capsys):
        code = main(["compare", "--packets", "20000",
                     "--memory-kb", "16", "--sketches", "cm,fcm"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cm" in out and "fcm" in out

    def test_resources(self, capsys):
        code = main(["resources", "--memory-kb", "1300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FCM-Sketch" in out and "switch.p4" in out
