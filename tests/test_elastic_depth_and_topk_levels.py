"""Deeper coverage for Elastic's light_depth and multi-level Top-K."""

import numpy as np
import pytest

from repro.core.topk import TopKFilter
from repro.sketches import ElasticSketch
from repro.traffic import caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return caida_like_trace(num_packets=40_000, seed=111)


class TestElasticLightDepth:
    def test_depth_shrinks_row_width(self):
        one = ElasticSketch(64 * 1024, light_depth=1, seed=1)
        two = ElasticSketch(64 * 1024, light_depth=2, seed=1)
        assert two.light_width < one.light_width
        assert two.light.shape[0] == 2

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            ElasticSketch(64 * 1024, light_depth=0)

    def test_min_over_rows(self, trace):
        es = ElasticSketch(64 * 1024, light_depth=3, seed=2)
        es.ingest(trace.keys)
        key = int(trace.ground_truth.keys_array()[0])
        if es.topk.lookup(key) is None:
            per_row = [
                int(es.light[row, h.index(key, es.light_width)])
                for row, h in enumerate(es._light_hashes)
            ]
            assert es.query(key) == min(per_row)

    def test_query_many_matches_scalar(self, trace):
        es = ElasticSketch(64 * 1024, light_depth=2, seed=2)
        es.ingest(trace.keys)
        keys = trace.ground_truth.keys_array()[:200]
        vec = es.query_many(keys)
        for i, k in enumerate(keys):
            assert vec[i] == es.query(int(k))

    def test_distribution_uses_all_rows(self, trace):
        es = ElasticSketch(64 * 1024, light_depth=2, seed=2)
        es.ingest(trace.keys)
        arrays = es.light_virtual()
        assert len(arrays) == 2
        result = es.estimate_distribution(iterations=3)
        assert result.total_flows > 0


class TestMultiLevelTopK:
    def test_second_level_catches_spill(self):
        filt = TopKFilter(entries_per_level=1, levels=2, lambda_ratio=100)
        spilled = []
        filt.insert(1, lambda k, c: spilled.append((k, c)))
        # Key 2 collides at level 1 (single slot) but level 2 is free.
        filt.insert(2, lambda k, c: spilled.append((k, c)))
        assert spilled == []
        assert filt.lookup(1) == (1, False)
        assert filt.lookup(2) == (1, False)

    def test_reject_after_all_levels(self):
        filt = TopKFilter(entries_per_level=1, levels=2, lambda_ratio=100)
        spilled = []
        for key in (1, 2, 3):
            filt.insert(key, lambda k, c: spilled.append((k, c)))
        assert spilled == [(3, 1)]

    def test_resident_count_grows_with_levels(self):
        trace = caida_like_trace(num_packets=20_000, seed=112)
        single = TopKFilter(entries_per_level=64, levels=1)
        multi = TopKFilter(entries_per_level=64, levels=4)
        for filt in (single, multi):
            for key in trace.keys:
                filt.insert(int(key), lambda k, c: None)
        assert len(multi.resident_keys()) > len(single.resident_keys())

    def test_memory_scales_with_levels(self):
        assert TopKFilter(entries_per_level=64, levels=4).memory_bytes \
            == 4 * TopKFilter(entries_per_level=64, levels=1).memory_bytes
