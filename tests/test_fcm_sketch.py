"""Tests for the multi-tree FCMSketch."""

import numpy as np
import pytest

from repro.core import FCMConfig, FCMSketch
from repro.traffic import caida_like_trace


@pytest.fixture(scope="module")
def loaded_sketch_and_trace():
    trace = caida_like_trace(num_packets=60_000, seed=11)
    sketch = FCMSketch.with_memory(16 * 1024, seed=4)
    sketch.ingest(trace.keys)
    return sketch, trace


class TestConstruction:
    def test_with_memory_defaults(self):
        sketch = FCMSketch.with_memory(64 * 1024)
        assert sketch.num_trees == 2
        assert sketch.config.k == 8
        assert sketch.memory_bytes <= 64 * 1024

    def test_requires_derived_widths(self):
        with pytest.raises(ValueError):
            FCMSketch(FCMConfig())

    def test_trees_use_distinct_hashes(self):
        sketch = FCMSketch.with_memory(32 * 1024)
        seeds = {tree.hash.seed for tree in sketch.trees}
        assert len(seeds) == sketch.num_trees


class TestQueries:
    def test_update_query_roundtrip(self):
        sketch = FCMSketch.with_memory(32 * 1024)
        sketch.update(111, count=9)
        assert sketch.query(111) == 9

    def test_never_underestimates(self, loaded_sketch_and_trace):
        sketch, trace = loaded_sketch_and_trace
        gt = trace.ground_truth
        estimates = sketch.query_many(gt.keys_array())
        assert np.all(estimates >= gt.sizes_array())

    def test_min_over_trees(self, loaded_sketch_and_trace):
        sketch, trace = loaded_sketch_and_trace
        key = int(trace.ground_truth.keys_array()[0])
        per_tree = [tree.query(key) for tree in sketch.trees]
        assert sketch.query(key) == min(per_tree)

    def test_query_many_matches_scalar(self, loaded_sketch_and_trace):
        sketch, trace = loaded_sketch_and_trace
        keys = trace.ground_truth.keys_array()[:200]
        vec = sketch.query_many(keys)
        for i, k in enumerate(keys):
            assert vec[i] == sketch.query(int(k))

    def test_absent_key_usually_small(self, loaded_sketch_and_trace):
        sketch, _ = loaded_sketch_and_trace
        absent = np.arange(10**12, 10**12 + 500, dtype=np.uint64)
        estimates = sketch.query_many(absent)
        # Collisions can inflate a few, but the median must be tiny.
        assert np.median(estimates) < 50


class TestHeavyHitters:
    def test_detects_planted_heavy_flow(self):
        sketch = FCMSketch.with_memory(32 * 1024)
        keys = np.concatenate([
            np.full(5000, 42, dtype=np.uint64),
            np.arange(1000, dtype=np.uint64),
        ])
        sketch.ingest(keys)
        hitters = sketch.heavy_hitters(np.unique(keys), threshold=1000)
        assert 42 in hitters

    def test_no_false_negatives(self, loaded_sketch_and_trace):
        """Overestimate-only queries can never miss a true heavy
        hitter when candidates cover all flows."""
        sketch, trace = loaded_sketch_and_trace
        threshold = trace.heavy_hitter_threshold()
        truth = trace.ground_truth.heavy_hitters(threshold)
        reported = sketch.heavy_hitters(
            trace.ground_truth.keys_array(), threshold
        )
        assert truth <= reported

    def test_empty_candidates(self):
        sketch = FCMSketch.with_memory(16 * 1024)
        assert sketch.heavy_hitters([], 10) == set()

    def test_rejects_bad_threshold(self):
        sketch = FCMSketch.with_memory(16 * 1024)
        with pytest.raises(ValueError):
            sketch.heavy_hitters([1], 0)


class TestCardinality:
    def test_close_on_light_load(self):
        sketch = FCMSketch.with_memory(64 * 1024)
        keys = np.arange(2000, dtype=np.uint64)
        sketch.ingest(keys)
        assert sketch.cardinality() == pytest.approx(2000, rel=0.1)

    def test_empty_sketch(self):
        sketch = FCMSketch.with_memory(16 * 1024)
        assert sketch.cardinality() == 0.0

    def test_duplicates_do_not_inflate(self):
        sketch = FCMSketch.with_memory(64 * 1024)
        sketch.ingest(np.tile(np.arange(500, dtype=np.uint64), 50))
        assert sketch.cardinality() == pytest.approx(500, rel=0.15)

    def test_total_packets(self):
        sketch = FCMSketch.with_memory(16 * 1024)
        sketch.ingest(np.array([1, 1, 2], dtype=np.uint64))
        sketch.update(3, count=4)
        assert sketch.total_packets == 7


class TestAccuracyVsCountMin:
    def test_fcm_beats_cm_on_skewed_traffic(self):
        """The headline claim: large ARE reduction vs CM at equal
        memory on a heavy-tailed trace (§7.3)."""
        from repro.metrics import average_relative_error
        from repro.sketches import CountMinSketch

        trace = caida_like_trace(num_packets=120_000, seed=3)
        gt = trace.ground_truth
        budget = 16 * 1024
        fcm = FCMSketch.with_memory(budget, seed=1)
        cm = CountMinSketch(budget, seed=1)
        fcm.ingest(trace.keys)
        cm.ingest(trace.keys)
        sizes = gt.sizes_array()
        fcm_are = average_relative_error(sizes,
                                         fcm.query_many(gt.keys_array()))
        cm_are = average_relative_error(sizes,
                                        cm.query_many(gt.keys_array()))
        assert fcm_are < 0.5 * cm_are
