"""Tests for the network-wide simulation substrate and app studies."""

import networkx as nx
import numpy as np
import pytest

from repro.network import (
    EntropyAnomalyDetector,
    NetworkSimulator,
    SketchLoadBalancer,
    fat_tree,
    leaf_spine,
)
from repro.network.topology import ecmp_paths, leaf_switches
from repro.traffic import Trace, caida_like_trace, split_windows


class TestTopologies:
    def test_leaf_spine_shape(self):
        graph = leaf_spine(num_leaves=4, num_spines=3)
        assert len(leaf_switches(graph)) == 4
        assert graph.number_of_edges() == 12

    def test_leaf_spine_validation(self):
        with pytest.raises(ValueError):
            leaf_spine(num_leaves=1)

    def test_fat_tree_counts(self):
        k = 4
        graph = fat_tree(k)
        # k^2/4 cores, k pods x k/2 agg + k/2 edge.
        assert sum(1 for _, d in graph.nodes(data=True)
                   if d["role"] == "core") == (k // 2) ** 2
        assert len(leaf_switches(graph)) == k * k // 2
        assert nx.is_connected(graph)

    def test_fat_tree_validation(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_ecmp_paths_leaf_spine(self):
        graph = leaf_spine(num_leaves=3, num_spines=4)
        paths = ecmp_paths(graph)
        # Every leaf pair has one 2-hop path per spine.
        assert all(len(p) == 4 for p in paths.values())
        for (src, dst), candidates in paths.items():
            for path in candidates:
                assert path[0] == src and path[-1] == dst
                assert len(path) == 3


class TestSimulator:
    @pytest.fixture(scope="class")
    def routed(self):
        trace = caida_like_trace(num_packets=60_000, seed=81)
        sim = NetworkSimulator(leaf_spine(4, 2),
                               memory_bytes=32 * 1024, seed=1)
        sim.route_trace(trace)
        return sim, trace

    def test_requires_two_leaves(self):
        graph = nx.Graph()
        graph.add_node("leaf0", role="leaf")
        with pytest.raises(ValueError):
            NetworkSimulator(graph)

    def test_endpoints_deterministic(self, routed):
        sim, _ = routed
        assert sim.endpoints_of(1234) == sim.endpoints_of(1234)
        src, dst = sim.endpoints_of(1234)
        assert src != dst

    def test_all_packets_traverse_two_leaves(self, routed):
        sim, trace = routed
        leaf_total = sum(sim.switches[leaf].packets_forwarded
                         for leaf in sim.leaves)
        assert leaf_total == 2 * len(trace)

    def test_flow_size_never_underestimates(self, routed):
        sim, trace = routed
        gt = trace.ground_truth
        sample = list(gt.flow_sizes.items())[:300]
        for key, size in sample:
            assert sim.flow_size(key) >= size

    def test_network_wide_heavy_hitters(self, routed):
        sim, trace = routed
        threshold = trace.heavy_hitter_threshold()
        truth = trace.ground_truth.heavy_hitters(threshold)
        reported = sim.heavy_hitters(
            trace.ground_truth.keys_array(), threshold
        )
        assert truth <= reported  # overestimate-only => no misses

    def test_total_flows(self, routed):
        sim, trace = routed
        assert sim.total_flows() == pytest.approx(
            trace.ground_truth.cardinality, rel=0.1
        )

    def test_link_load_conservation(self, routed):
        sim, trace = routed
        # Leaf-spine paths have exactly 2 links, so total link load is
        # twice the packet volume.
        assert sum(sim.link_load.values()) == 2 * len(trace)

    def test_selector_validation(self):
        sim = NetworkSimulator(leaf_spine(2, 2), memory_bytes=16 * 1024)
        trace = Trace(np.arange(100, dtype=np.uint64))
        with pytest.raises(ValueError):
            sim.route_trace(trace,
                            path_selector=lambda k, c: ["bogus"])


class TestLoadBalancer:
    def _elephant_trace(self, seed: int) -> Trace:
        rng = np.random.default_rng(seed)
        elephants = np.repeat(
            np.arange(10, dtype=np.uint64), 5000
        )
        mice = rng.integers(1000, 1_000_000, size=30_000,
                            dtype=np.uint64)
        keys = np.concatenate([elephants, mice])
        rng.shuffle(keys)
        return Trace(keys)

    def test_steering_helps_on_average(self):
        """Averaged over seeds, elephant steering should not lose to
        ECMP and typically wins (greedy bottleneck avoidance)."""
        baselines, steered = [], []
        for seed in range(4):
            trace = self._elephant_trace(seed)
            ecmp = NetworkSimulator(leaf_spine(4, 2),
                                    memory_bytes=32 * 1024, seed=seed)
            ecmp.route_trace(trace)
            baselines.append(ecmp.load_imbalance())

            sim = NetworkSimulator(leaf_spine(4, 2),
                                   memory_bytes=32 * 1024, seed=seed)
            balancer = SketchLoadBalancer(sim, elephant_threshold=1000)
            steered.append(balancer.balance(warmup=trace,
                                            workload=trace))
            assert balancer.steered_flows >= 5
        assert np.mean(steered) <= np.mean(baselines) * 1.02

    def test_select_prefers_least_loaded_path(self):
        sim = NetworkSimulator(leaf_spine(2, 2),
                               memory_bytes=32 * 1024, seed=3)
        # Warm the ingress sketch so the flow reads as an elephant.
        key = 42
        src, _ = sim.endpoints_of(key)
        sim.switches[src].sketch.update(key, 5000)
        balancer = SketchLoadBalancer(sim, elephant_threshold=100)
        candidates = sim.paths[sim.endpoints_of(key)]
        # Pre-load every link of the first candidate path.
        balancer._commit(candidates[0], 10_000)
        chosen = balancer.select(key, candidates)
        assert chosen == candidates[1]
        assert balancer.steered_flows == 1

    def test_threshold_validation(self):
        sim = NetworkSimulator(leaf_spine(2, 2), memory_bytes=16 * 1024)
        with pytest.raises(ValueError):
            SketchLoadBalancer(sim, elephant_threshold=0)


class TestAnomalyDetector:
    def test_flags_ddos_window(self):
        base = caida_like_trace(num_packets=120_000, seed=82)
        windows = split_windows(base, 4)
        rng = np.random.default_rng(0)
        # DDoS: a burst of brand-new 1-packet flows crushes the window
        # into a very different entropy regime.
        attack = rng.integers(2**40, 2**41, size=60_000,
                              dtype=np.uint64)
        attacked = Trace(np.concatenate([windows[2].keys, attack]))
        schedule = [windows[0], windows[1], attacked, windows[3]]

        detector = EntropyAnomalyDetector(memory_bytes=64 * 1024,
                                          deviation_threshold=0.1)
        alerts = detector.scan(schedule)
        assert any(alert.window_index == 2 for alert in alerts)
        assert all(alert.window_index != 1 for alert in alerts)

    def test_quiet_traffic_no_alerts(self):
        base = caida_like_trace(num_packets=80_000, seed=83)
        windows = split_windows(base, 4)
        detector = EntropyAnomalyDetector(memory_bytes=64 * 1024,
                                          deviation_threshold=0.25)
        assert detector.scan(windows) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            EntropyAnomalyDetector(deviation_threshold=0)
        with pytest.raises(ValueError):
            EntropyAnomalyDetector(warmup_windows=0)
