"""Chaos runs: route a Zipf trace under every fault type and assert
(a) no exception escapes, (b) degraded estimates stay within the
documented error bounds, (c) identical FaultPlan seeds reproduce
identical reports.

Marked ``chaos`` so ``make chaos`` / ``pytest -m chaos`` can select
them; they also run in the regular tier-1 suite.  All randomness is
plan-seeded (no ``hash()``), so results are identical under any
``PYTHONHASHSEED``.
"""

import numpy as np
import pytest

from repro.controlplane import NetworkSketchCollector
from repro.network import NetworkSimulator, leaf_spine
from repro.robustness import (
    CollectionPolicy,
    DegradationLevel,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.traffic import zipf_trace

pytestmark = pytest.mark.chaos

MEMORY = 32 * 1024
NUM_WINDOWS = 3

# Each entry: a fresh-plan factory (plans are mutable; sharing one
# instance across parametrized runs would break isolation).
FAULT_PLANS = {
    "dead-switch": lambda: FaultPlan(seed=3).kill_switch("spine0"),
    "dead-leaf": lambda: FaultPlan(seed=3).kill_switch("leaf3"),
    "lossy-link": lambda: FaultPlan(seed=3).lossy_link(
        "leaf0", "spine0", 0.3),
    "bit-flip": lambda: FaultPlan(seed=3).flip_bits(
        "spine1", num_flips=4, max_bit=10),
    "collection-timeout": lambda: FaultPlan(seed=3).stall_collection(
        "leaf2", delay=9.0),
}


@pytest.fixture(scope="module")
def trace():
    return zipf_trace(30_000, alpha=1.3, seed=11)


def build_sim(plan=None, seed=1):
    injector = FaultInjector(plan) if plan is not None else None
    return NetworkSimulator(leaf_spine(4, 2), memory_bytes=MEMORY,
                            seed=seed, fault_injector=injector)


def mean_are(sim, flow_sizes):
    """Mean absolute relative error over answerable flows."""
    errors = []
    for key, true_size in flow_sizes.items():
        answer = sim.flow_size_resilient(key)
        if not answer.ok:
            continue
        errors.append(abs(answer.value - true_size) / true_size)
    assert errors, "no flow was answerable"
    return float(np.mean(errors))


class TestChaosRuns:
    @pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
    def test_no_exception_escapes(self, trace, fault):
        sim = build_sim(FAULT_PLANS[fault]())
        collector = NetworkSketchCollector(sim)
        reports = collector.process(trace, NUM_WINDOWS)  # must not raise
        assert len(reports) == NUM_WINDOWS
        assert all(r.health is not None for r in reports)

    @pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
    def test_degraded_estimates_within_bounds(self, trace, fault):
        """Documented degradation bounds (docs/API.md, fault model):

        * dead switch / stalled collection: queries over surviving
          paths keep mean ARE within 2x the fault-free run (+2%
          absolute for the near-exact regime);
        * lossy link (fraction p): additionally allow p, the expected
          undercount of flows crossing the link;
        * bit flips: corruption is confined to one vantage point; the
          path-minimum absorbs inflations, so the same 2x bound holds
          with a small allowance for deflated counters.
        """
        flow_sizes = trace.ground_truth.flow_sizes
        baseline = build_sim(None)
        baseline.route_trace(trace)
        base_are = mean_are(baseline, flow_sizes)

        sim = build_sim(FAULT_PLANS[fault]())
        sim.route_trace(trace, window=0)
        faulted_are = mean_are(sim, flow_sizes)

        slack = 0.02
        if fault == "lossy-link":
            slack += 0.3  # the injected drop fraction
        if fault == "bit-flip":
            slack += 0.05
        assert faulted_are <= 2.0 * base_are + slack

    @pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
    def test_identical_seed_identical_reports(self, trace, fault):
        def run():
            sim = build_sim(FAULT_PLANS[fault]())
            collector = NetworkSketchCollector(sim)
            reports = collector.process(trace, NUM_WINDOWS)
            sample = sorted(trace.ground_truth.flow_sizes)[:50]
            answers = [sim.flow_size_resilient(k) for k in sample]
            return reports, answers, sim.fault_injector.events

        first_reports, first_answers, first_events = run()
        second_reports, second_answers, second_events = run()
        assert first_events == second_events
        assert first_answers == second_answers
        for a, b in zip(first_reports, second_reports):
            assert a.health == b.health
            assert a.total_packets == b.total_packets
            assert a.cardinality_estimate == b.cardinality_estimate


class TestAcceptanceScenario:
    """The issue's acceptance scenario: one dead spine + one stalled
    leaf, full pipeline, no raise, health recorded, ARE within 2x."""

    def plan(self):
        return (FaultPlan(seed=7)
                .kill_switch("spine0")
                .stall_collection("leaf1", delay=30.0))

    def test_full_run(self, trace):
        sim = build_sim(self.plan())
        collector = NetworkSketchCollector(sim)
        reports = collector.process(trace, NUM_WINDOWS)

        for report in reports:
            health = report.health
            assert "spine0" in health.switches_failed
            assert "leaf1" in health.switches_failed \
                or "leaf1" in health.switches_skipped
            assert health.degradation in (DegradationLevel.DEGRADED,
                                          DegradationLevel.CRITICAL)
            # Stalled leaf consumed the full retry budget at least once.
        assert sum(r.health.retries for r in reports) > 0
        assert reports[-1].health.staleness.get("spine0", 0) >= NUM_WINDOWS

    def test_query_accuracy_within_2x(self, trace):
        flow_sizes = trace.ground_truth.flow_sizes
        baseline = build_sim(None)
        baseline.route_trace(trace)
        base_are = mean_are(baseline, flow_sizes)

        sim = build_sim(self.plan())
        sim.route_trace(trace, window=0)
        assert mean_are(sim, flow_sizes) <= 2.0 * base_are + 0.02

        threshold = trace.heavy_hitter_threshold()
        truth = trace.ground_truth.heavy_hitters(threshold)
        answer = sim.heavy_hitters_resilient(
            trace.ground_truth.keys_array(), threshold)
        assert answer.ok
        # Path-minimum over surviving hops still never misses a true
        # heavy hitter (every surviving hop saw all of its packets).
        assert truth <= answer.value


class TestRetryAndBreaker:
    def test_retry_eventually_succeeds(self, trace):
        plan = FaultPlan(seed=2).stall_collection(
            "leaf0", delay=9.0, fail_attempts=1)
        sim = build_sim(plan)
        collector = NetworkSketchCollector(sim)
        reports = collector.process(trace, 2)
        for report in reports:
            assert "leaf0" in report.health.switches_reached
            assert report.health.retries >= 1
            assert report.health.backoff_seconds > 0

    def test_breaker_stops_hammering_dead_switch(self, trace):
        plan = FaultPlan(seed=2).stall_collection("spine1", delay=9.0)
        policy = CollectionPolicy(
            timeout=1.0,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            breaker_threshold=2, breaker_cooldown=2)
        sim = build_sim(plan)
        collector = NetworkSketchCollector(sim, policy=policy)
        reports = collector.process(trace, 6)
        skipped_windows = [r.window_index for r in reports
                           if "spine1" in r.health.switches_skipped]
        failed_windows = [r.window_index for r in reports
                          if "spine1" in r.health.switches_failed]
        assert failed_windows == [0, 1, 4]    # breaker trips after two,
        assert skipped_windows == [2, 3, 5]   # probes at 4, re-opens

    def test_window_ranged_outage_recovers(self, trace):
        plan = FaultPlan(seed=2).kill_switch(
            "spine0", start_window=1, end_window=2)
        sim = build_sim(plan)
        collector = NetworkSketchCollector(sim)
        reports = collector.process(trace, 3)
        assert "spine0" in reports[0].health.switches_reached
        assert "spine0" in reports[1].health.switches_failed
        assert "spine0" in reports[2].health.switches_reached
        kinds = [(e.window, e.kind) for e in sim.fault_injector.events
                 if e.target == "spine0"]
        assert (1, "switch-down") in kinds
        assert (2, "switch-up") in kinds


class TestServiceChaos:
    """Chaos scenarios for the async measurement service: a slow
    consumer, a bursty source and a source disconnecting mid-epoch.
    Every scenario must end with an exact conservation ledger and,
    where packets were shed, DegradationLevel tags on the shed
    windows."""

    LID = 30.0

    def _run(self, coro):
        import asyncio

        async def lidded():
            return await asyncio.wait_for(coro, timeout=self.LID)

        return asyncio.run(lidded())

    def _service(self, policy, **kwargs):
        from repro.core import FCMSketch
        from repro.runtime import EpochConfig, EpochManager
        from repro.service import MeasurementService, PressureConfig

        manager = EpochManager(
            lambda: FCMSketch.with_memory(64 * 1024),
            config=EpochConfig(epoch_packets=kwargs.pop("epoch_packets",
                                                        4_000),
                               retention=64))
        pressure = PressureConfig(
            policy=policy,
            source_packets=kwargs.pop("source_packets", 2_048),
            global_packets=kwargs.pop("global_packets", 2_048))
        return MeasurementService(manager, pressure=pressure, **kwargs)

    def test_slow_consumer_sheds_and_tags(self):
        """The ingest worker lags (per-step delay); a shedding policy
        drops the overflow and the shed windows carry tags."""
        import numpy as np

        from repro.service import SimulatedSource

        keys = np.arange(24_000, dtype=np.uint64) % 512
        service = self._service("shed-oldest", worker_batch=256,
                                ingest_delay=0.002)
        src = SimulatedSource("fast", [keys[i:i + 1_200]
                                       for i in range(0, 24_000, 1_200)],
                              burst=20)
        report = self._run(service.run([src]))
        assert report.conserved, report.ledger_line()
        assert report.shed_oldest > 0
        assert report.pressure_transitions > 0
        assert report.degraded_epochs
        for index in report.degraded_epochs:
            tagged = report.epoch_degradation[index]
            assert tagged >= DegradationLevel.DEGRADED

    def test_bursty_source_vs_steady_fleet(self):
        """One bursty source slams the queue while steady sources
        drip; per-source bounds keep the fleet alive and the ledger
        exact."""
        import numpy as np

        from repro.service import SimulatedSource

        burst_keys = np.zeros(16_000, dtype=np.uint64)
        steady_keys = np.arange(4_000, dtype=np.uint64) % 64 + 1_000
        bursty = SimulatedSource(
            "bursty", [burst_keys[i:i + 2_000]
                       for i in range(0, 16_000, 2_000)], burst=8)
        steady = [SimulatedSource(f"steady{j}",
                                  [steady_keys[i:i + 200]
                                   for i in range(0, 4_000, 200)],
                                  delay=0.002)
                  for j in range(2)]
        service = self._service("shed-newest", worker_batch=256,
                                source_packets=1_024,
                                global_packets=4_096)
        report = self._run(service.run([bursty] + steady))
        assert report.conserved, report.ledger_line()
        # The bursty source shed; the steady fleet got through whole.
        assert report.per_source["bursty"].shed > 0
        for j in range(2):
            stats = report.per_source[f"steady{j}"]
            assert stats.shed == 0
            assert stats.accepted == stats.offered == 4_000

    def test_source_disconnect_mid_epoch(self):
        """A source vanishing mid-epoch must not leak packets: what it
        sent stays counted, the rest of the fleet finishes, and the
        final epoch still seals."""
        import numpy as np

        from repro.service import SimulatedSource, SourceDisconnected

        keys = np.arange(12_000, dtype=np.uint64) % 256
        flaky = SimulatedSource(
            "flaky", [keys[i:i + 500] for i in range(0, 6_000, 500)],
            disconnect_after=5)
        solid = SimulatedSource(
            "solid", [keys[i:i + 500] for i in range(6_000, 12_000, 500)])
        service = self._service("block", epoch_packets=4_000,
                                worker_batch=512)
        report = self._run(service.run([flaky, solid],
                                       raise_source_errors=False))
        assert report.conserved, report.ledger_line()
        assert flaky.sent_batches == 5
        assert report.per_source["flaky"].accepted == 5 * 500
        assert report.per_source["solid"].accepted == 6_000
        assert report.ingested == 5 * 500 + 6_000
        assert report.live_packets == 0
        # Driven directly (outside the fleet harness, which tolerates
        # disconnects), the source raises SourceDisconnected itself.
        async def direct():
            service2 = self._service("block", worker_batch=512)
            flaky2 = SimulatedSource(
                "flaky", [keys[:500]] * 4, disconnect_after=2)
            await service2.start()
            with pytest.raises(SourceDisconnected):
                await flaky2.run(service2)
            return await service2.drain()

        report2 = self._run(direct())
        assert report2.conserved
        assert report2.ingested == 2 * 500

    def test_chaos_ledger_deterministic(self):
        """Same seeds, same service config: the shed/sampled ledger is
        identical across runs (sampling is generator-seeded)."""
        import numpy as np

        from repro.service import SimulatedSource

        keys = np.arange(18_000, dtype=np.uint64) % 128

        def once():
            service = self._service("degrade-sample", worker_batch=128)
            src = SimulatedSource("s", [keys[i:i + 900]
                                        for i in range(0, 18_000, 900)],
                                  burst=24)
            report = self._run(service.run([src]))
            return (report.accepted, report.ingested, report.shed,
                    report.sampled_out, report.min_sample_rate,
                    sorted(report.epoch_degradation.items()))

        assert once() == once()
