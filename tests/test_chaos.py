"""Chaos runs: route a Zipf trace under every fault type and assert
(a) no exception escapes, (b) degraded estimates stay within the
documented error bounds, (c) identical FaultPlan seeds reproduce
identical reports.

Marked ``chaos`` so ``make chaos`` / ``pytest -m chaos`` can select
them; they also run in the regular tier-1 suite.  All randomness is
plan-seeded (no ``hash()``), so results are identical under any
``PYTHONHASHSEED``.
"""

import numpy as np
import pytest

from repro.controlplane import NetworkSketchCollector
from repro.network import NetworkSimulator, leaf_spine
from repro.robustness import (
    CollectionPolicy,
    DegradationLevel,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.traffic import zipf_trace

pytestmark = pytest.mark.chaos

MEMORY = 32 * 1024
NUM_WINDOWS = 3

# Each entry: a fresh-plan factory (plans are mutable; sharing one
# instance across parametrized runs would break isolation).
FAULT_PLANS = {
    "dead-switch": lambda: FaultPlan(seed=3).kill_switch("spine0"),
    "dead-leaf": lambda: FaultPlan(seed=3).kill_switch("leaf3"),
    "lossy-link": lambda: FaultPlan(seed=3).lossy_link(
        "leaf0", "spine0", 0.3),
    "bit-flip": lambda: FaultPlan(seed=3).flip_bits(
        "spine1", num_flips=4, max_bit=10),
    "collection-timeout": lambda: FaultPlan(seed=3).stall_collection(
        "leaf2", delay=9.0),
}


@pytest.fixture(scope="module")
def trace():
    return zipf_trace(30_000, alpha=1.3, seed=11)


def build_sim(plan=None, seed=1):
    injector = FaultInjector(plan) if plan is not None else None
    return NetworkSimulator(leaf_spine(4, 2), memory_bytes=MEMORY,
                            seed=seed, fault_injector=injector)


def mean_are(sim, flow_sizes):
    """Mean absolute relative error over answerable flows."""
    errors = []
    for key, true_size in flow_sizes.items():
        answer = sim.flow_size_resilient(key)
        if not answer.ok:
            continue
        errors.append(abs(answer.value - true_size) / true_size)
    assert errors, "no flow was answerable"
    return float(np.mean(errors))


class TestChaosRuns:
    @pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
    def test_no_exception_escapes(self, trace, fault):
        sim = build_sim(FAULT_PLANS[fault]())
        collector = NetworkSketchCollector(sim)
        reports = collector.process(trace, NUM_WINDOWS)  # must not raise
        assert len(reports) == NUM_WINDOWS
        assert all(r.health is not None for r in reports)

    @pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
    def test_degraded_estimates_within_bounds(self, trace, fault):
        """Documented degradation bounds (docs/API.md, fault model):

        * dead switch / stalled collection: queries over surviving
          paths keep mean ARE within 2x the fault-free run (+2%
          absolute for the near-exact regime);
        * lossy link (fraction p): additionally allow p, the expected
          undercount of flows crossing the link;
        * bit flips: corruption is confined to one vantage point; the
          path-minimum absorbs inflations, so the same 2x bound holds
          with a small allowance for deflated counters.
        """
        flow_sizes = trace.ground_truth.flow_sizes
        baseline = build_sim(None)
        baseline.route_trace(trace)
        base_are = mean_are(baseline, flow_sizes)

        sim = build_sim(FAULT_PLANS[fault]())
        sim.route_trace(trace, window=0)
        faulted_are = mean_are(sim, flow_sizes)

        slack = 0.02
        if fault == "lossy-link":
            slack += 0.3  # the injected drop fraction
        if fault == "bit-flip":
            slack += 0.05
        assert faulted_are <= 2.0 * base_are + slack

    @pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
    def test_identical_seed_identical_reports(self, trace, fault):
        def run():
            sim = build_sim(FAULT_PLANS[fault]())
            collector = NetworkSketchCollector(sim)
            reports = collector.process(trace, NUM_WINDOWS)
            sample = sorted(trace.ground_truth.flow_sizes)[:50]
            answers = [sim.flow_size_resilient(k) for k in sample]
            return reports, answers, sim.fault_injector.events

        first_reports, first_answers, first_events = run()
        second_reports, second_answers, second_events = run()
        assert first_events == second_events
        assert first_answers == second_answers
        for a, b in zip(first_reports, second_reports):
            assert a.health == b.health
            assert a.total_packets == b.total_packets
            assert a.cardinality_estimate == b.cardinality_estimate


class TestAcceptanceScenario:
    """The issue's acceptance scenario: one dead spine + one stalled
    leaf, full pipeline, no raise, health recorded, ARE within 2x."""

    def plan(self):
        return (FaultPlan(seed=7)
                .kill_switch("spine0")
                .stall_collection("leaf1", delay=30.0))

    def test_full_run(self, trace):
        sim = build_sim(self.plan())
        collector = NetworkSketchCollector(sim)
        reports = collector.process(trace, NUM_WINDOWS)

        for report in reports:
            health = report.health
            assert "spine0" in health.switches_failed
            assert "leaf1" in health.switches_failed \
                or "leaf1" in health.switches_skipped
            assert health.degradation in (DegradationLevel.DEGRADED,
                                          DegradationLevel.CRITICAL)
            # Stalled leaf consumed the full retry budget at least once.
        assert sum(r.health.retries for r in reports) > 0
        assert reports[-1].health.staleness.get("spine0", 0) >= NUM_WINDOWS

    def test_query_accuracy_within_2x(self, trace):
        flow_sizes = trace.ground_truth.flow_sizes
        baseline = build_sim(None)
        baseline.route_trace(trace)
        base_are = mean_are(baseline, flow_sizes)

        sim = build_sim(self.plan())
        sim.route_trace(trace, window=0)
        assert mean_are(sim, flow_sizes) <= 2.0 * base_are + 0.02

        threshold = trace.heavy_hitter_threshold()
        truth = trace.ground_truth.heavy_hitters(threshold)
        answer = sim.heavy_hitters_resilient(
            trace.ground_truth.keys_array(), threshold)
        assert answer.ok
        # Path-minimum over surviving hops still never misses a true
        # heavy hitter (every surviving hop saw all of its packets).
        assert truth <= answer.value


class TestRetryAndBreaker:
    def test_retry_eventually_succeeds(self, trace):
        plan = FaultPlan(seed=2).stall_collection(
            "leaf0", delay=9.0, fail_attempts=1)
        sim = build_sim(plan)
        collector = NetworkSketchCollector(sim)
        reports = collector.process(trace, 2)
        for report in reports:
            assert "leaf0" in report.health.switches_reached
            assert report.health.retries >= 1
            assert report.health.backoff_seconds > 0

    def test_breaker_stops_hammering_dead_switch(self, trace):
        plan = FaultPlan(seed=2).stall_collection("spine1", delay=9.0)
        policy = CollectionPolicy(
            timeout=1.0,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            breaker_threshold=2, breaker_cooldown=2)
        sim = build_sim(plan)
        collector = NetworkSketchCollector(sim, policy=policy)
        reports = collector.process(trace, 6)
        skipped_windows = [r.window_index for r in reports
                           if "spine1" in r.health.switches_skipped]
        failed_windows = [r.window_index for r in reports
                          if "spine1" in r.health.switches_failed]
        assert failed_windows == [0, 1, 4]    # breaker trips after two,
        assert skipped_windows == [2, 3, 5]   # probes at 4, re-opens

    def test_window_ranged_outage_recovers(self, trace):
        plan = FaultPlan(seed=2).kill_switch(
            "spine0", start_window=1, end_window=2)
        sim = build_sim(plan)
        collector = NetworkSketchCollector(sim)
        reports = collector.process(trace, 3)
        assert "spine0" in reports[0].health.switches_reached
        assert "spine0" in reports[1].health.switches_failed
        assert "spine0" in reports[2].health.switches_reached
        kinds = [(e.window, e.kind) for e in sim.fault_injector.events
                 if e.target == "spine0"]
        assert (1, "switch-down") in kinds
        assert (2, "switch-up") in kinds
