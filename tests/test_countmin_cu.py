"""Tests for Count-Min and CU sketches."""

import numpy as np
import pytest

from repro.errors import SketchMemoryError
from repro.sketches import CountMinSketch, CUSketch
from repro.sketches.batching import flow_grouped_reordering
from repro.traffic import caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return caida_like_trace(num_packets=50_000, seed=8)


class TestCountMin:
    def test_exact_when_no_collisions(self):
        cm = CountMinSketch(64 * 1024)
        cm.update(5, count=7)
        assert cm.query(5) == 7

    def test_never_underestimates(self, trace):
        cm = CountMinSketch(8 * 1024)
        cm.ingest(trace.keys)
        gt = trace.ground_truth
        assert np.all(cm.query_many(gt.keys_array()) >= gt.sizes_array())

    def test_ingest_equals_scalar(self):
        a = CountMinSketch(2048, seed=3)
        b = CountMinSketch(2048, seed=3)
        keys = np.arange(500, dtype=np.uint64) % 60
        for k in keys:
            a.update(int(k))
        b.ingest(keys)
        assert np.array_equal(a.counters, b.counters)

    def test_query_many_matches_scalar(self, trace):
        cm = CountMinSketch(8 * 1024)
        cm.ingest(trace.keys)
        keys = trace.ground_truth.keys_array()[:100]
        vec = cm.query_many(keys)
        for i, k in enumerate(keys):
            assert vec[i] == cm.query(int(k))

    def test_memory_budget(self):
        cm = CountMinSketch(10_000, depth=3)
        assert cm.memory_bytes <= 10_000
        assert cm.width == 10_000 // 4 // 3

    def test_counter_saturation(self):
        cm = CountMinSketch(1024, counter_bits=8)
        cm.update(1, count=500)
        assert cm.query(1) == 255

    def test_rejects_bad_params(self):
        with pytest.raises(SketchMemoryError):
            CountMinSketch(0)
        with pytest.raises(ValueError):
            CountMinSketch(1024, depth=0)
        with pytest.raises(ValueError):
            CountMinSketch(1024, counter_bits=12)
        with pytest.raises(ValueError):
            CountMinSketch(1024).update(1, count=-1)

    def test_more_memory_helps(self, trace):
        from repro.metrics import average_relative_error
        gt = trace.ground_truth
        errors = []
        for budget in (4 * 1024, 32 * 1024):
            cm = CountMinSketch(budget, seed=5)
            cm.ingest(trace.keys)
            errors.append(average_relative_error(
                gt.sizes_array(), cm.query_many(gt.keys_array())
            ))
        assert errors[1] < errors[0]


class TestCU:
    def test_exact_single_flow(self):
        cu = CUSketch(4096)
        for _ in range(5):
            cu.update(9)
        assert cu.query(9) == 5

    def test_never_underestimates(self, trace):
        cu = CUSketch(8 * 1024)
        cu.ingest(trace.keys)
        gt = trace.ground_truth
        assert np.all(cu.query_many(gt.keys_array()) >= gt.sizes_array())

    def test_never_worse_than_cm(self, trace):
        """Conservative update dominates CM pointwise (same hashes)."""
        cm = CountMinSketch(8 * 1024, seed=7)
        cu = CUSketch(8 * 1024, seed=7)
        cm.ingest(trace.keys)
        cu.ingest(trace.keys)
        keys = trace.ground_truth.keys_array()
        assert np.all(cu.query_many(keys) <= cm.query_many(keys))

    def test_ingest_equals_scalar_replay(self):
        """CU's batch path is pinned to its relaxed contract: identical
        to the scalar loop over the flow-grouped reordering."""
        a = CUSketch(2048, seed=2)
        b = CUSketch(2048, seed=2)
        keys = (np.arange(800, dtype=np.uint64) * 7) % 97
        for k in flow_grouped_reordering(keys):
            a.update(int(k))
        b.ingest(keys)
        assert np.array_equal(a.counters, b.counters)

    def test_interleaving_never_underestimates(self):
        """CU is order-dependent; whatever the interleaving, estimates
        must still never drop below the true counts."""
        rng = np.random.default_rng(4)
        keys = rng.permutation(
            np.repeat(np.arange(40, dtype=np.uint64), 25)
        )
        cu = CUSketch(256, seed=1)
        cu.ingest(keys)
        uniq, counts = np.unique(keys, return_counts=True)
        assert np.all(cu.query_many(uniq) >= counts)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            CUSketch(1024).update(1, count=-2)
