"""The sharded parallel-ingest engine and the snapshot drain path.

The engine's contract is determinism: chunk → fan out → ingest →
merge-reduce must produce a sketch **byte-identical** (``to_state()``)
to one that ingested the whole stream serially, for any shard count
and in both execution modes.  The collector half moves drained
sketches as codec bytes and must report the same measurements as the
in-process handle path.
"""

import numpy as np
import pytest

from repro.controlplane import (
    NetworkSketchCollector,
    ParallelSketchCollector,
)
from repro.core import FCMSketch
from repro.engine import ShardedIngestEngine, chunk_batches
from repro.errors import SketchCompatibilityError
from repro.network.simulator import NetworkSimulator
from repro.network.topology import leaf_spine
from repro.sketches import CountMinSketch, CUSketch
from repro.telemetry import MetricsRegistry
from repro.traffic import zipf_trace

MEMORY = 16 * 1024


def fcm_factory():
    return FCMSketch.with_memory(MEMORY, seed=3)


def cm_factory():
    return CountMinSketch(MEMORY, seed=3)


@pytest.fixture(scope="module")
def keys():
    return zipf_trace(50_000, alpha=1.2, seed=9).keys


# ----------------------------------------------------------------------
# chunking
# ----------------------------------------------------------------------

def test_chunk_batches_covers_stream(keys):
    batches = chunk_batches(keys, 4096)
    assert sum(b.shape[0] for b in batches) == keys.shape[0]
    assert all(b.shape[0] == 4096 for b in batches[:-1])
    assert np.array_equal(np.concatenate(batches), keys)


def test_chunk_batches_empty_and_invalid():
    assert chunk_batches(np.array([], dtype=np.uint64), 64) == []
    with pytest.raises(ValueError):
        chunk_batches(np.arange(4, dtype=np.uint64), 0)


# ----------------------------------------------------------------------
# determinism: sharded == serial, byte for byte
# ----------------------------------------------------------------------

@pytest.mark.parametrize("shards", [1, 2, 3, 4, 5])
def test_inline_sharding_matches_serial(keys, shards):
    serial = fcm_factory()
    serial.ingest(keys)
    engine = ShardedIngestEngine(fcm_factory, num_shards=shards,
                                 batch_size=4096, mode="inline")
    merged = engine.ingest(keys)
    assert merged.to_state() == serial.to_state()


def test_process_mode_four_workers_matches_serial_on_1m_trace():
    # The ISSUE acceptance criterion: 4 workers, seeded 1M-packet
    # trace, byte-identical state.
    trace_keys = zipf_trace(1_000_000, alpha=1.2, seed=1).keys
    serial = fcm_factory()
    serial.ingest(trace_keys)
    with ShardedIngestEngine(fcm_factory, num_shards=4,
                             mode="process") as engine:
        merged = engine.ingest(trace_keys)
    stats = engine.last_stats
    assert merged.to_state() == serial.to_state()
    assert stats.mode == "process"
    assert stats.shards == 4
    assert stats.packets == 1_000_000
    assert sum(stats.shard_packets) == 1_000_000


def test_batch_size_does_not_change_result(keys):
    states = set()
    for batch_size in (1024, 4096, 65536):
        engine = ShardedIngestEngine(cm_factory, num_shards=3,
                                     batch_size=batch_size, mode="inline")
        states.add(engine.ingest(keys).to_state())
    assert len(states) == 1


def test_empty_stream(keys):
    engine = ShardedIngestEngine(fcm_factory, num_shards=4, mode="auto")
    merged = engine.ingest(np.array([], dtype=np.uint64))
    assert merged.to_state() == fcm_factory().to_state()
    assert engine.last_stats.mode == "inline"
    assert engine.last_stats.packets == 0


def test_auto_mode_stays_inline_for_single_shard(keys):
    engine = ShardedIngestEngine(fcm_factory, num_shards=1, mode="auto")
    engine.ingest(keys)
    assert engine.last_stats.mode == "inline"


# ----------------------------------------------------------------------
# protocol enforcement and stats
# ----------------------------------------------------------------------

def test_unmergeable_factory_rejected_up_front():
    with pytest.raises(SketchCompatibilityError) as excinfo:
        ShardedIngestEngine(lambda: CUSketch(MEMORY, seed=3))
    assert "order" in str(excinfo.value)


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        ShardedIngestEngine(fcm_factory, num_shards=0)
    with pytest.raises(ValueError):
        ShardedIngestEngine(fcm_factory, batch_size=0)
    with pytest.raises(ValueError):
        ShardedIngestEngine(fcm_factory, mode="threads")


def test_stats_and_telemetry(keys):
    registry = MetricsRegistry()
    engine = ShardedIngestEngine(fcm_factory, num_shards=2,
                                 batch_size=8192, mode="inline",
                                 telemetry=registry)
    engine.ingest(keys)
    stats = engine.last_stats
    assert stats.pps > 0
    assert stats.state_bytes > 0
    assert stats.batches == -(-keys.shape[0] // 8192)
    assert registry.counter("engine.ingest.packets").value \
        == keys.shape[0]
    assert registry.counter("engine.ingest.calls").value == 1


# ----------------------------------------------------------------------
# the snapshot-bytes drain path
# ----------------------------------------------------------------------

def _run_collector(cls, trace, windows=3):
    sim = NetworkSimulator(leaf_spine(num_leaves=4, num_spines=2),
                           memory_bytes=32 * 1024, seed=1)
    return cls(sim).process(trace, windows)


def test_parallel_collector_matches_handle_path():
    trace = zipf_trace(30_000, alpha=1.3, seed=11)
    base = _run_collector(NetworkSketchCollector, trace)
    parallel = _run_collector(ParallelSketchCollector, trace)
    for rb, rp in zip(base, parallel):
        assert rp.total_packets == rb.total_packets
        assert rp.cardinality_estimate == rb.cardinality_estimate
        # The base path moves object handles: no snapshot bytes.
        assert rb.snapshot_bytes == {}
        # The parallel path serialized every reached switch…
        assert sorted(rp.snapshot_bytes) == rp.health.switches_reached
        assert all(n > 0 for n in rp.snapshot_bytes.values())
        # …and the rehydrated replicas carry identical state.
        for name, sketch in rb.collected_sketches.items():
            assert rp.collected_sketches[name].to_state() \
                == sketch.to_state()


def test_parallel_collector_counts_snapshot_telemetry():
    trace = zipf_trace(20_000, alpha=1.3, seed=11)
    registry = MetricsRegistry()
    sim = NetworkSimulator(leaf_spine(num_leaves=4, num_spines=2),
                           memory_bytes=32 * 1024, seed=1,
                           telemetry=registry)
    reports = ParallelSketchCollector(sim, telemetry=registry) \
        .process(trace, 2)
    drains = sum(len(r.health.switches_reached) for r in reports)
    moved = sum(sum(r.snapshot_bytes.values()) for r in reports)
    assert registry.counter("collector.snapshots_ok").value == drains
    assert registry.counter("collector.snapshot_bytes").value == moved
    assert moved > 0


def test_parallel_collector_falls_back_without_codec():
    class NoCodecSketch:
        def ingest(self, keys):
            pass

        def cardinality(self):
            return 0.0

    registry = MetricsRegistry()
    sim = NetworkSimulator(leaf_spine(num_leaves=4, num_spines=2),
                           memory_bytes=32 * 1024, seed=1)
    collector = ParallelSketchCollector(sim, telemetry=registry)
    sketch = NoCodecSketch()
    returned, nbytes = collector._transport("leaf0", sketch)
    assert returned is sketch
    assert nbytes is None
    assert registry.counter("collector.snapshot_fallbacks").value == 1
