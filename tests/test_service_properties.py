"""Stateful property tests for the measurement service's sync core.

A :class:`hypothesis.stateful.RuleBasedStateMachine` drives a
:class:`~repro.service.MeasurementService` through random
interleavings of source admissions (random sources, batch sizes and
backpressure policies are drawn per machine), ingest-worker steps,
forced rotations, watchdog-style direct flushes and the final drain,
shadowed by an exact oracle of the keys the service *actually*
ingested (built from :meth:`ingest_step`'s return value, so the
oracle never guesses what a shedding policy dropped).

Invariants, after every rule:

* **conservation** — ``accepted == ingested + shed + queued`` while
  running, and ``accepted == ingested + shed`` exactly (with zero
  live/queued packets) after the drain;
* **no underestimate** — a scoped ``"all"`` query is >= the oracle's
  exact count of ingested packets for that flow (retention is set
  high enough that no sealed epoch is evicted mid-run);
* **runtime agreement** — the manager's own zero-gap ledger sees
  exactly the packets the service claims to have ingested;
* **tagging totals** — per-epoch degradation tags exist for every
  sealed epoch and shed packets are attributed to exactly one epoch.

The service core is deliberately synchronous (asyncio only wraps it),
which is what lets hypothesis explore interleavings no event-loop
schedule would produce — including admissions racing rotations and
drains with packets still queued.
"""

import functools
from collections import Counter

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core import FCMSketch
from repro.robustness import DegradationLevel
from repro.runtime import EpochConfig, EpochManager
from repro.service import (
    BackpressurePolicy,
    MeasurementService,
    PressureConfig,
)

#: High retention: the "all" scope must cover every sealed epoch for
#: the no-underestimate oracle to be exact.
RETENTION = 64

KEYS = st.integers(min_value=1, max_value=48)
SOURCES = st.sampled_from(["s0", "s1", "s2"])

FACTORY = functools.partial(FCMSketch.with_memory, 8 * 1024, seed=11)


class MeasurementServiceMachine(RuleBasedStateMachine):
    @initialize(policy=st.sampled_from(list(BackpressurePolicy)),
                source_cap=st.integers(min_value=8, max_value=64),
                global_cap=st.integers(min_value=16, max_value=128),
                epoch_packets=st.integers(min_value=16, max_value=200))
    def setup(self, policy, source_cap, global_cap, epoch_packets):
        manager = EpochManager(
            FACTORY, config=EpochConfig(epoch_packets=epoch_packets,
                                        retention=RETENTION))
        self.service = MeasurementService(
            manager,
            pressure=PressureConfig(policy=policy,
                                    source_packets=source_cap,
                                    global_packets=global_cap),
            worker_batch=32)
        self.ingested_oracle = Counter()   # exact: from ingest_step()
        self.drained = False

    # -- rules ---------------------------------------------------------

    @precondition(lambda self: not self.drained)
    @rule(source=SOURCES, batch=st.lists(KEYS, max_size=40))
    def admit(self, source, batch):
        keys = np.asarray(batch, dtype=np.uint64)
        outcome = self.service.admit(source, keys)
        # BLOCK defers what does not fit; deferred packets were never
        # accepted, so the machine (standing in for a parked producer
        # that gave up) simply drops them — conservation must hold.
        assert outcome.accepted + outcome.deferred.size == keys.size
        assert outcome.queued + outcome.shed == outcome.accepted

    @precondition(lambda self: not self.drained)
    @rule(max_packets=st.integers(min_value=1, max_value=64))
    def ingest_step(self, max_packets):
        fed = self.service.ingest_step(max_packets)
        self.ingested_oracle.update(int(k) for k in fed)

    @precondition(lambda self: not self.drained)
    @rule()
    def rotate(self):
        if self.service.manager.live_packets > 0:
            self.service.rotate(reason="machine")

    @precondition(lambda self: not self.drained)
    @rule()
    def watchdog_flush(self):
        """The failover path: feed everything queued directly."""
        before = self.service.queues.depth
        snapshot = [(seq, batch.copy())
                    for q in self.service.queues._queues.values()
                    for (seq, batch) in q]
        flushed = self.service.flush_queued()
        assert flushed == before
        for _, batch in snapshot:
            self.ingested_oracle.update(int(k) for k in batch)

    @precondition(lambda self: not self.drained)
    @rule(key=KEYS)
    def query_all(self, key):
        assert self.service.query_tagged(key, scope="all").value \
            >= self.ingested_oracle[key]

    @precondition(lambda self: not self.drained)
    @rule()
    def drain(self):
        queued = [(seq, batch.copy())
                  for q in self.service.queues._queues.values()
                  for (seq, batch) in q]
        report = self.service.drain_core()
        for _, batch in queued:
            self.ingested_oracle.update(int(k) for k in batch)
        self.drained = True
        self.report = report
        assert report.conserved, report.ledger_line()
        assert report.live_packets == 0
        assert report.ingested == sum(self.ingested_oracle.values())
        # Every sealed epoch carries a degradation tag and sampling
        # rate; tags beyond FULL only exist where packets were shed.
        tags = self.service.epoch_degradation
        assert sorted(tags) == list(range(report.sealed_epochs))
        if report.shed == 0:
            assert all(level is DegradationLevel.FULL
                       for level in tags.values())

    @precondition(lambda self: self.drained)
    @rule(key=KEYS)
    def query_after_drain(self, key):
        """The sealed history stays queryable after shutdown."""
        answer = self.service.query_tagged(key, scope="all")
        assert answer.value >= self.ingested_oracle[key]
        assert self.report.conserved

    # -- invariants ----------------------------------------------------

    @invariant()
    def conservation(self):
        service = getattr(self, "service", None)
        if service is None:
            return
        assert service.accepted == service.ingested + service.shed \
            + service.queues.depth

    @invariant()
    def runtime_agrees(self):
        service = getattr(self, "service", None)
        if service is None:
            return
        assert service.manager.packets_fed == service.ingested
        assert sum(e.packets for e in service.manager.store) \
            + service.manager.live_packets == service.ingested

    @invariant()
    def never_underestimates_ingested(self):
        service = getattr(self, "service", None)
        if service is None or self.drained:
            return
        # Spot-check the heaviest oracle flow (full sweeps per step
        # would dominate runtime).
        if self.ingested_oracle:
            key, exact = self.ingested_oracle.most_common(1)[0]
            assert service.query_tagged(key, scope="all").value >= exact

    def teardown(self):
        service = getattr(self, "service", None)
        if service is not None and not self.drained:
            report = service.drain_core()
            assert report.conserved, report.ledger_line()


MeasurementServiceMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)

TestMeasurementService = MeasurementServiceMachine.TestCase
