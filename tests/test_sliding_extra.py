"""Edge cases of the jumping-window sketch and its state codec.

Companions to ``test_sliding_window.py``: exact slot-boundary
behavior, degenerate window configs, recycled-slot hygiene, and the
ring's new serialization half of the mergeable-state protocol.
"""

import numpy as np
import pytest

from repro.controlplane import JumpingWindowSketch
from repro.core import FCMSketch
from repro.errors import SketchCompatibilityError, StateCodecError


def make_window(window=400, slots=4, memory=8 * 1024, seed=3):
    return JumpingWindowSketch(window, num_slots=slots,
                               memory_bytes=memory, seed=seed)


class TestSlotBoundaries:
    def test_rotation_exactly_at_slot_boundary(self):
        w = make_window(window=40, slots=4)   # slot = 10 packets
        w.ingest(np.full(10, 1, dtype=np.uint64))
        # Rotation is lazy: the full slot is still the only one until
        # the next packet arrives and opens a fresh slot.
        assert len(w._slots) == 1
        assert w.live_packets == 10
        w.update(2)
        assert len(w._slots) == 2
        assert w._current_fill == 1
        assert w.live_packets == 11

    def test_ingest_chunked_at_exact_boundary(self):
        w = make_window(window=40, slots=4)
        w.ingest(np.full(25, 5, dtype=np.uint64))  # 2 full + 5 in third
        assert len(w._slots) == 3
        assert w._current_fill == 5
        assert w.query(5) >= 25

    def test_window_smaller_than_one_slot_rejected(self):
        with pytest.raises(ValueError):
            JumpingWindowSketch(3, num_slots=4)
        with pytest.raises(ValueError):
            JumpingWindowSketch(10, num_slots=20)
        with pytest.raises(ValueError):
            JumpingWindowSketch(0, num_slots=2)
        with pytest.raises(ValueError):
            JumpingWindowSketch(40, num_slots=1)

    def test_recycled_slot_reset_zeroes_counters(self):
        w = make_window(window=40, slots=4)
        # Fill the whole ring with flow 9, then one more full slot of
        # flow 8: the oldest flow-9 slot is evicted and the newest
        # slot starts from zero.
        w.ingest(np.full(40, 9, dtype=np.uint64))
        assert len(w._slots) == 4
        w.ingest(np.full(10, 8, dtype=np.uint64))
        assert len(w._slots) == 4            # ring did not grow
        newest = w._slots[-1]
        assert newest.total_packets == 10    # fresh slot, only flow 8
        assert newest.query(9) == 0
        assert w.query(9) <= 30              # evicted slot's 10 gone
        assert w.query(8) >= 10


class TestWindowStateCodec:
    def test_round_trip_byte_identical(self):
        w = make_window()
        rng = np.random.default_rng(7)
        w.ingest(rng.integers(0, 1000, 350, dtype=np.uint64))
        blob = w.to_state()
        clone = make_window().from_state(blob)
        assert clone.to_state() == blob
        assert clone.packets_seen == w.packets_seen
        assert clone.live_packets == w.live_packets
        uniq = np.arange(1000, dtype=np.uint64)
        assert np.array_equal(clone.query_many(uniq), w.query_many(uniq))

    def test_partial_ring_round_trip(self):
        w = make_window(window=400, slots=4)
        w.ingest(np.full(150, 3, dtype=np.uint64))  # 2 live slots only
        clone = make_window().from_state(w.to_state())
        assert len(clone._slots) == 2
        assert clone._current_fill == 50
        # The clone keeps accumulating from exactly where w stopped.
        clone.update(3)
        w.update(3)
        assert clone.to_state() == w.to_state()

    def test_mismatched_window_config_rejected(self):
        blob = make_window(window=400, slots=4).to_state()
        with pytest.raises(SketchCompatibilityError):
            make_window(window=800, slots=4).from_state(blob)
        with pytest.raises(SketchCompatibilityError):
            JumpingWindowSketch(400, num_slots=8,
                                memory_bytes=8 * 1024).from_state(blob)

    def test_mismatched_sub_sketch_rejected(self):
        blob = make_window(memory=8 * 1024).to_state()
        with pytest.raises((SketchCompatibilityError, StateCodecError)):
            make_window(memory=16 * 1024).from_state(blob)
        with pytest.raises((SketchCompatibilityError, StateCodecError)):
            make_window(seed=99).from_state(blob)

    def test_corrupt_state_rejected(self):
        blob = make_window().to_state()
        with pytest.raises(StateCodecError):
            make_window().from_state(b"XXXX" + blob[4:])
        with pytest.raises(StateCodecError):
            make_window().from_state(blob[:32])
        # Wrong kind entirely: a bare FCM snapshot is not a window.
        fcm_blob = FCMSketch.with_memory(8 * 1024, seed=3).to_state()
        with pytest.raises((SketchCompatibilityError, StateCodecError)):
            make_window().from_state(fcm_blob)

    def test_merge_raises_typed_error(self):
        a, b = make_window(), make_window()
        a.ingest(np.full(20, 1, dtype=np.uint64))
        b.ingest(np.full(20, 2, dtype=np.uint64))
        with pytest.raises(SketchCompatibilityError) as exc:
            a.merge(b)
        assert "arrival order" in str(exc.value)
        # Typed error still satisfies legacy except ValueError sites.
        assert isinstance(exc.value, ValueError)

    def test_codec_unavailable_sub_sketch(self):
        class Plain:
            def update(self, key):
                pass

            def ingest(self, keys):
                pass

        w = JumpingWindowSketch(40, num_slots=4, sketch_factory=Plain)
        with pytest.raises(SketchCompatibilityError):
            w.to_state()
