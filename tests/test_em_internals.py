"""White-box tests for EM internals: exact partition generation,
deterministic fallbacks, initialization, degenerate posteriors,
repeated-run caching and guard-fallback telemetry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FCMSketch
from repro.core.em import (
    EMConfig,
    EMEstimator,
    _exact_partitions,
    enumerate_combinations,
)
from repro.core.virtual import VirtualCounterArray, convert_sketch
from repro.robustness import EMGuardConfig, guarded_estimate_distribution
from repro.telemetry import MemoryExporter, MetricsRegistry
from repro.telemetry.tracing import read_spans


def _flatten(combo):
    sizes, mults = combo
    return tuple(np.repeat(sizes, mults))


class TestExactPartitions:
    def test_single_part(self):
        assert list(_exact_partitions(7, 1, 1)) == [((7,), (1,))]
        assert list(_exact_partitions(2, 1, 3)) == []

    def test_two_parts(self):
        combos = [_flatten(c) for c in _exact_partitions(9, 2, 3)]
        assert combos == [(3, 6), (4, 5)]

    def test_two_parts_equal_split(self):
        combos = [_flatten(c) for c in _exact_partitions(8, 2, 4)]
        assert combos == [(4, 4)]
        sizes, mults = next(iter(_exact_partitions(8, 2, 4)))
        assert sizes == (4,) and mults == (2,)

    def test_three_parts(self):
        combos = {_flatten(c) for c in _exact_partitions(9, 3, 2)}
        assert combos == {(2, 2, 5), (2, 3, 4), (3, 3, 3)}

    @given(value=st.integers(1, 60), parts=st.integers(1, 4),
           min_part=st.integers(1, 10))
    @settings(max_examples=80, deadline=None)
    def test_properties(self, value, parts, min_part):
        for combo in _exact_partitions(value, parts, min_part):
            flat = _flatten(combo)
            assert sum(flat) == value
            assert len(flat) == parts
            assert min(flat) >= min_part
            assert flat == tuple(sorted(flat))

    @given(value=st.integers(1, 40), parts=st.integers(1, 3),
           min_part=st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_matches_generic_path(self, value, parts, min_part):
        """The fast path must enumerate exactly what the generic
        recursion + cover check would."""
        fast = {_flatten(c)
                for c in _exact_partitions(value, parts, min_part)}
        generic = {
            _flatten(c)
            for c in enumerate_combinations(value, parts, min_part,
                                            max_flows=parts + 1)
            if len(_flatten(c)) == parts
            and min(_flatten(c)) >= (min_part if parts > 1 else 1)
        }
        if parts == 1:
            generic = {g for g in generic if g[0] >= min_part}
        assert fast == generic


class TestDeterministicFallback:
    def test_large_value_single_flow(self):
        out = np.zeros(10_000, dtype=np.float64)
        EMEstimator._add_deterministic(out, 5000, degree=1, min_path=1)
        assert out[5000] == 1.0 and out.sum() == 1.0

    def test_large_value_high_degree(self):
        out = np.zeros(10_000, dtype=np.float64)
        EMEstimator._add_deterministic(out, 5000, degree=3,
                                       min_path=255)
        assert out[255] == 2.0
        assert out[5000 - 2 * 255] == 1.0

    def test_degenerate_split(self):
        out = np.zeros(100, dtype=np.float64)
        EMEstimator._add_deterministic(out, 10, degree=4, min_path=255)
        # Cannot fit 3 mice of 255: falls back to equal shares.
        assert out.sum() == 4.0

    def test_zero_value_ignored(self):
        out = np.zeros(10, dtype=np.float64)
        EMEstimator._add_deterministic(out, 0, degree=1, min_path=1)
        assert out.sum() == 0.0


class TestInitialization:
    def test_initial_guess_total_near_counters(self):
        sketch = FCMSketch.with_memory(16 * 1024, seed=1)
        for key in range(200):
            sketch.update(key, count=3)
        estimator = EMEstimator(convert_sketch(sketch))
        n0 = estimator.initial_guess()
        assert n0.sum() == pytest.approx(200, rel=0.1)
        assert n0[0] == 0.0

    def test_initial_guess_has_floor(self):
        sketch = FCMSketch.with_memory(16 * 1024, seed=1)
        sketch.update(1, count=5)
        estimator = EMEstimator(convert_sketch(sketch))
        n0 = estimator.initial_guess()
        # Every enumerable size gets epsilon support.
        assert np.all(n0[1:estimator.config.exact_threshold] > 0)


class TestDegeneratePosterior:
    def test_uniform_fallback_when_no_support(self):
        """If the current estimate gives zero mass to every feasible
        combination, the posterior falls back to uniform instead of
        dividing by zero."""
        sketch = FCMSketch.with_memory(16 * 1024, seed=2)
        sketch.update(1, count=10)
        arrays = convert_sketch(sketch)
        estimator = EMEstimator(arrays, EMConfig(epsilon=0.0))
        n_j = np.zeros(estimator._size)
        n_j[3] = 1.0  # support only on size 3; counter value is 10
        updated = estimator._iterate(n_j)
        assert np.isfinite(updated).all()
        assert updated.sum() > 0


class TestRepeatedRuns:
    """Regression: ``run()`` twice on one estimator must be idempotent
    *and* cheap — tree preparation and the initial guess are built at
    construction/first use and never again (a second ``run()`` used to
    pay the full ``_prepare_tree`` enumeration)."""

    def test_second_run_bit_identical_and_skips_preparation(self):
        sketch = FCMSketch.with_memory(16 * 1024, seed=4)
        for key in range(300):
            sketch.update(key, count=2)
        arrays = convert_sketch(sketch)
        estimator = EMEstimator(arrays)
        assert estimator.prepare_calls == len(arrays)

        first = estimator.run(iterations=3)
        second = estimator.run(iterations=3)
        assert np.array_equal(first.size_counts, second.size_counts)
        assert first.total_flows == second.total_flows
        # Still exactly one preparation per tree and one guess build:
        # the repeat run re-used every cached precomputation.
        assert estimator.prepare_calls == len(arrays)
        assert estimator.initial_guess_builds == 1

    def test_initial_guess_returns_private_copies(self):
        sketch = FCMSketch.with_memory(16 * 1024, seed=4)
        sketch.update(1, count=5)
        estimator = EMEstimator(convert_sketch(sketch))
        a = estimator.initial_guess()
        a[:] = -1.0
        b = estimator.initial_guess()
        assert estimator.initial_guess_builds == 1
        assert np.all(b >= 0)


class TestGuardFallbackTelemetry:
    """The guarded entry points must *account* for served fallbacks:
    counter, event and the spans of the aborted run."""

    @staticmethod
    def _sketch():
        sketch = FCMSketch.with_memory(16 * 1024, seed=6)
        for key in range(150):
            sketch.update(key, count=4)
        return sketch

    def test_fallback_counted_and_event_emitted(self):
        exporter = MemoryExporter()
        telemetry = MetricsRegistry(exporter=exporter)
        # A zero-width divergence corridor aborts on the first
        # iteration deterministically.
        outcome = guarded_estimate_distribution(
            self._sketch(), guard=EMGuardConfig(divergence_factor=1.0),
            telemetry=telemetry)
        assert outcome.fell_back
        assert "total flows" in outcome.reason
        assert telemetry.counter("em.guard_fallbacks").value == 1
        events = [e for e in exporter.events if e.name == "em.fallback"]
        assert len(events) == 1
        assert events[0].kind == "em"
        assert events[0].fields["reason"] == outcome.reason
        # The aborted run still exports its spans: the trace shows the
        # iteration that tripped the guard.
        spans = read_spans(exporter.events)
        names = {s["name"] for s in spans}
        assert {"em.run", "em.iteration"} <= names

    def test_clean_run_counts_nothing(self):
        exporter = MemoryExporter()
        telemetry = MetricsRegistry(exporter=exporter)
        outcome = guarded_estimate_distribution(
            self._sketch(), iterations=2, telemetry=telemetry)
        assert not outcome.fell_back
        assert telemetry.counter("em.guard_fallbacks").value == 0
        assert not [e for e in exporter.events if e.name == "em.fallback"]


class TestMultiTreeAveraging:
    def test_contributions_averaged_over_trees(self):
        """Eqn. 5: n_j is the *average* over trees, so duplicating the
        same tree must not double the flow count."""
        sketch = FCMSketch.with_memory(16 * 1024, seed=3)
        for key in range(100):
            sketch.update(key, count=2)
        single = EMEstimator([convert_sketch(sketch)[0]]).run(iterations=4)
        double = EMEstimator(convert_sketch(sketch)).run(iterations=4)
        assert double.total_flows == pytest.approx(single.total_flows,
                                                   rel=0.1)
