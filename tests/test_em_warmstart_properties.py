"""Property tests for incremental (warm-started) EM.

Three contracts:

* **Closeness** — seeding EM from an adjacent (perturbed) epoch's
  estimate steers it to (numerically) the same fixed point the cold
  start finds: warm and cold answers agree on total flow count and
  distribution shape.
* **Non-inferiority** — re-estimating the *same* epoch seeded from its
  own converged estimate (full seed trust, ``warm_start_blend=1.0``)
  never needs more iterations than the cold start did.
* **Typed failure** — degenerate seeds (all-zero, wrong length, NaN,
  negative, non-numeric) raise :class:`EMWarmStartError` up front and
  leave the estimator fully usable; the estimate is never corrupted.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FCMSketch
from repro.core.em import EMConfig, EMEstimator
from repro.core.virtual import convert_sketch
from repro.errors import EMWarmStartError
from repro.traffic import zipf_trace

MEMORY = 16 * 1024
TOL = 1e-3


def arrays_for(keys, seed=3):
    sketch = FCMSketch.with_memory(MEMORY, seed=seed)
    sketch.ingest(keys)
    return convert_sketch(sketch)


def epoch_pair(trace_seed: int, drop_fraction: float):
    """Two adjacent epochs: the second replays the first with a slice
    of the stream dropped and fresh packets appended (perturbation)."""
    trace = zipf_trace(12_000, alpha=1.2, seed=trace_seed)
    half = trace.keys.shape[0] // 2
    first, second = trace.keys[:half], trace.keys[half:]
    keep = int(second.shape[0] * (1.0 - drop_fraction))
    if keep >= second.shape[0]:
        return first, second
    extra = zipf_trace(second.shape[0] - keep, alpha=1.2,
                       seed=trace_seed + 101).keys
    perturbed = np.concatenate([second[:keep], extra])
    return first, perturbed


class TestPerturbedEpochCloseness:
    @given(trace_seed=st.integers(0, 4),
           drop_fraction=st.sampled_from([0.0, 0.1, 0.3]))
    @settings(max_examples=6, deadline=None)
    def test_warm_result_close_to_cold_fixed_point(self, trace_seed,
                                                   drop_fraction):
        first, perturbed = epoch_pair(trace_seed, drop_fraction)
        config = EMConfig(max_iterations=30, convergence_tol=TOL)
        prev = EMEstimator(arrays_for(first), config).run()
        arrays = arrays_for(perturbed)
        cold = EMEstimator(arrays, config).run()
        warm = EMEstimator(arrays, config).run(warm_start=prev)
        assert warm.warm_started and warm.converged and cold.converged
        assert warm.total_flows == pytest.approx(cold.total_flows,
                                                 rel=0.05)
        l1 = float(np.abs(warm.size_counts - cold.size_counts).sum())
        assert l1 <= 0.15 * cold.total_flows

    @given(trace_seed=st.integers(0, 3))
    @settings(max_examples=4, deadline=None)
    def test_warm_run_converges_within_default_budget(self, trace_seed):
        """The blended seed must not wander: warm runs converge within
        the same default iteration budget cold runs use, so the
        runtime's ``iterations_saved`` gauge stays meaningful."""
        first, perturbed = epoch_pair(trace_seed, 0.2)
        config = EMConfig(convergence_tol=TOL)  # default 10-iter budget
        prev = EMEstimator(arrays_for(first), config).run()
        warm = EMEstimator(arrays_for(perturbed), config).run(
            warm_start=prev)
        assert warm.converged
        assert warm.iterations_saved > 0


class TestIdenticalEpochNonInferiority:
    @given(trace_seed=st.integers(0, 4),
           budget=st.sampled_from([6, 10, 20]))
    @settings(max_examples=8, deadline=None)
    def test_never_more_iterations_than_cold(self, trace_seed, budget):
        keys = zipf_trace(8_000, alpha=1.2, seed=trace_seed).keys
        arrays = arrays_for(keys)
        config = EMConfig(max_iterations=budget, convergence_tol=TOL,
                          warm_start_blend=1.0)
        cold = EMEstimator(arrays, config).run()
        warm = EMEstimator(arrays, config).run(warm_start=cold)
        assert warm.iterations <= cold.iterations
        assert warm.iterations_saved >= cold.iterations_saved
        assert warm.total_flows == pytest.approx(cold.total_flows,
                                                 rel=0.02)

    def test_self_seed_converges_immediately(self):
        """A converged estimate is (near) the fixed point: re-seeding
        the same epoch with it stops after a single check."""
        arrays = arrays_for(zipf_trace(8_000, alpha=1.2, seed=1).keys)
        config = EMConfig(max_iterations=30, convergence_tol=TOL,
                          warm_start_blend=1.0)
        cold = EMEstimator(arrays, config).run()
        warm = EMEstimator(arrays, config).run(warm_start=cold)
        assert warm.iterations <= 2


class TestDegenerateSeeds:
    @pytest.fixture(scope="class")
    def arrays(self):
        return arrays_for(zipf_trace(4_000, alpha=1.2, seed=2).keys)

    @pytest.mark.parametrize("seed_builder", [
        lambda size: np.zeros(size),                      # no mass
        lambda size: np.zeros(size // 2 + 1),             # wrong length
        lambda size: np.full(size, np.nan),               # non-finite
        lambda size: -np.ones(size),                      # negative
        lambda size: np.ones((size, 2)),                  # not 1-D
        lambda size: {},                                  # empty dict
        lambda size: {3: -1.0},                           # negative dict
        lambda size: object(),                            # non-numeric
    ], ids=["zero", "short", "nan", "negative", "2d", "empty-dict",
            "negative-dict", "object"])
    def test_raises_typed_error(self, arrays, seed_builder):
        estimator = EMEstimator(arrays)
        with pytest.raises(EMWarmStartError):
            estimator.run(warm_start=seed_builder(estimator._size))

    def test_bad_blend_config_raises(self, arrays):
        estimator = EMEstimator(
            arrays, EMConfig(warm_start_blend=0.0))
        with pytest.raises(EMWarmStartError):
            estimator.run(warm_start={3: 1.0})

    def test_estimator_usable_after_rejection(self, arrays):
        """A rejected seed must not corrupt state: the next cold run is
        bit-identical to a fresh estimator's."""
        estimator = EMEstimator(arrays)
        with pytest.raises(EMWarmStartError):
            estimator.run(warm_start=np.zeros(estimator._size))
        after = estimator.run(iterations=3)
        fresh = EMEstimator(arrays).run(iterations=3)
        assert np.array_equal(after.size_counts, fresh.size_counts)
        assert not after.warm_started

    def test_sparse_dict_and_result_rebin(self, arrays):
        """Sizes beyond this epoch's maximum clip into the top bin —
        mass is preserved, never dropped."""
        estimator = EMEstimator(arrays)
        size = estimator._size
        coerced = estimator._coerce_warm_start({size + 50: 2.0, 3: 1.0})
        assert coerced[size - 1] == pytest.approx(2.0, abs=1e-6)
        assert coerced[3] == pytest.approx(1.0, abs=1e-6)
