"""Tests for the capacity planner."""

import math

import numpy as np
import pytest

from repro.analysis.planner import (
    memory_for_accuracy,
    plan_for_accuracy,
    plan_for_memory,
)
from repro.core import FCMSketch
from repro.traffic import caida_like_trace


class TestPlanForAccuracy:
    def test_meets_epsilon(self):
        plan = plan_for_accuracy(epsilon=0.001, delta=0.05,
                                 expected_packets=1_000_000)
        assert plan.epsilon <= 0.001
        assert plan.delta <= 0.05

    def test_width_is_granular(self):
        plan = plan_for_accuracy(0.01, 0.1, 100_000, k=8)
        assert plan.config.leaf_width % 64 == 0  # k^(L-1)
        assert plan.config.stage_widths[0] \
            == 8 * plan.config.stage_widths[1]

    def test_tighter_epsilon_needs_more_memory(self):
        loose = plan_for_accuracy(0.01, 0.1, 100_000)
        tight = plan_for_accuracy(0.001, 0.1, 100_000)
        assert tight.config.memory_bytes > loose.config.memory_bytes

    def test_tighter_delta_needs_more_trees(self):
        loose = plan_for_accuracy(0.01, 0.3, 100_000)
        tight = plan_for_accuracy(0.01, 0.001, 100_000)
        assert tight.config.num_trees > loose.config.num_trees

    def test_describe(self):
        text = plan_for_accuracy(0.01, 0.1, 100_000).describe()
        assert "guarantee" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_for_accuracy(0.01, 0.1, expected_packets=0)


class TestPlanForMemory:
    def test_roundtrip_with_accuracy_plan(self):
        plan = plan_for_accuracy(0.005, 0.14, 500_000)
        back = plan_for_memory(plan.config.memory_bytes, 500_000,
                               num_trees=plan.config.num_trees)
        assert back.epsilon <= 0.005 * 1.05

    def test_degree_term_activation(self):
        small = plan_for_memory(4 * 1024, expected_packets=10_000_000)
        assert small.predicted_error > \
            math.e / small.config.leaf_width * 10_000_000 * 0.99
        assert small.overflow_safe_volume < 10_000_000

    def test_memory_for_accuracy_scalar(self):
        assert memory_for_accuracy(0.001, 0.05) \
            > memory_for_accuracy(0.01, 0.05)


class TestPlanHoldsEmpirically:
    def test_planned_sketch_meets_target(self):
        """Build the planned sketch, run real traffic, check the
        guarantee holds at the promised probability."""
        trace = caida_like_trace(num_packets=80_000, seed=101)
        plan = plan_for_accuracy(epsilon=0.001, delta=0.14,
                                 expected_packets=len(trace))
        sketch = FCMSketch(plan.config)
        sketch.ingest(trace.keys)
        gt = trace.ground_truth
        errors = sketch.query_many(gt.keys_array()) - gt.sizes_array()
        allowed = plan.epsilon * len(trace)
        violations = float(np.mean(errors > allowed))
        assert violations <= plan.delta + 0.01
