"""Tests for the Cold Filter (CF+CM) baseline."""

import numpy as np
import pytest

from repro.sketches.coldfilter import ColdFilterSketch
from repro.traffic import caida_like_trace


class TestColdFilterStructure:
    def test_memory_split(self):
        cf = ColdFilterSketch(64 * 1024)
        assert cf.memory_bytes <= 64 * 1024
        assert cf.t1 == 15 and cf.t2 == 65_535

    def test_validation(self):
        with pytest.raises(ValueError):
            ColdFilterSketch(1024, layer1_fraction=0.7,
                             layer2_fraction=0.4)
        with pytest.raises(ValueError):
            ColdFilterSketch(1024, layer1_fraction=0.0)
        with pytest.raises(ValueError):
            ColdFilterSketch(1024).update(1, count=-1)


class TestColdFilterCounting:
    def test_small_flow_in_layer1(self):
        cf = ColdFilterSketch(32 * 1024)
        cf.update(7, count=10)
        assert cf.query(7) == 10

    def test_overflow_to_layer2(self):
        cf = ColdFilterSketch(32 * 1024)
        cf.update(7, count=100)  # t1 = 15, rest spills to layer 2
        assert cf.query(7) == 100

    def test_hot_flow_reaches_cm(self):
        cf = ColdFilterSketch(32 * 1024, layer2_bits=8)
        # t1 = 15, t2 = 255: anything above 270 reaches the hot part.
        cf.update(7, count=1000)
        assert cf.query(7) == 1000

    def test_never_underestimates(self):
        trace = caida_like_trace(num_packets=30_000, seed=91)
        cf = ColdFilterSketch(24 * 1024, seed=2)
        cf.ingest(trace.keys)
        gt = trace.ground_truth
        est = cf.query_many(gt.keys_array())
        assert np.all(est >= gt.sizes_array())

    def test_filters_protect_hot_part(self):
        """Mice must be absorbed by the filter layers: the hot CM
        should see only the heavy tail's residue."""
        trace = caida_like_trace(num_packets=30_000, seed=92)
        cf = ColdFilterSketch(24 * 1024, seed=2)
        cf.ingest(trace.keys)
        assert int(cf.hot.counters.sum()) < len(trace) // 2

    def test_more_accurate_than_plain_cm(self):
        from repro.metrics import average_relative_error
        from repro.sketches import CountMinSketch

        trace = caida_like_trace(num_packets=60_000, seed=93)
        gt = trace.ground_truth
        budget = 16 * 1024
        cm = CountMinSketch(budget, seed=3)
        cf = ColdFilterSketch(budget, seed=3)
        cm.ingest(trace.keys)
        cf.ingest(trace.keys)
        cm_are = average_relative_error(
            gt.sizes_array(), cm.query_many(gt.keys_array())
        )
        cf_are = average_relative_error(
            gt.sizes_array(), cf.query_many(gt.keys_array())
        )
        assert cf_are < cm_are
