"""Tests for the PyramidSketch (PCM) baseline."""

import numpy as np
import pytest

from repro.errors import SketchMemoryError
from repro.sketches import PyramidCMSketch
from repro.traffic import caida_like_trace


class TestPyramidStructure:
    def test_layer_widths_halve(self):
        p = PyramidCMSketch(8 * 1024)
        for child, parent in zip(p.layer_widths, p.layer_widths[1:]):
            assert parent == (child + 1) // 2

    def test_memory_within_budget(self):
        for budget in (1024, 8 * 1024, 64 * 1024):
            p = PyramidCMSketch(budget)
            assert p.memory_bytes <= budget

    def test_rejects_tiny_budget(self):
        with pytest.raises(SketchMemoryError):
            PyramidCMSketch(4)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PyramidCMSketch(1024, num_hashes=0)
        with pytest.raises(ValueError):
            PyramidCMSketch(1024, word_bits=10, first_layer_bits=4)


class TestPyramidCounting:
    def test_small_count_exact(self):
        p = PyramidCMSketch(8 * 1024)
        p.update(7, count=9)
        assert p.query(7) == 9

    def test_carry_reconstruction(self):
        """Counts past the 4-bit first layer reconstruct exactly when
        there are no collisions."""
        p = PyramidCMSketch(16 * 1024)
        for count in (15, 16, 17, 100, 1000, 65_000):
            p2 = PyramidCMSketch(16 * 1024)
            p2.update(1234, count=count)
            assert p2.query(1234) == count

    def test_never_underestimates(self):
        trace = caida_like_trace(num_packets=40_000, seed=2)
        p = PyramidCMSketch(8 * 1024)
        p.ingest(trace.keys)
        gt = trace.ground_truth
        assert np.all(p.query_many(gt.keys_array()) >= gt.sizes_array())

    def test_ingest_equals_scalar(self):
        a = PyramidCMSketch(2048, seed=1)
        b = PyramidCMSketch(2048, seed=1)
        keys = np.arange(2000, dtype=np.uint64) % 150
        for k in keys:
            a.update(int(k))
        b.ingest(keys)
        uniq = np.unique(keys)
        assert np.array_equal(a.query_many(uniq), b.query_many(uniq))

    def test_query_many_matches_scalar(self):
        p = PyramidCMSketch(4096, seed=3)
        keys = (np.arange(3000, dtype=np.uint64) * 31) % 400
        p.ingest(keys)
        uniq = np.unique(keys)
        vec = p.query_many(uniq)
        for i, k in enumerate(uniq):
            assert vec[i] == p.query(int(k))

    def test_min_over_hashes(self):
        p = PyramidCMSketch(4096, seed=5)
        p.ingest(np.arange(4000, dtype=np.uint64) % 500)
        key = 123
        per_hash = [p._reconstruct(idx) for idx in p._leaf_indices(key)]
        assert p.query(key) == min(per_hash)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            PyramidCMSketch(1024).update(1, count=-1)
