"""Persistent shared-memory worker pool: lifecycle, determinism, chaos.

The pool's contract extends the engine's: workers are spawned once and
live across epoch seals, batches travel through shared-memory slabs
(zero-copy numpy views on the worker side), each worker owns one
hash-partitioned shard, and the only merge is the per-epoch seal — yet
the sealed state must stay **byte-identical** to a serial sketch that
ingested the whole stream.  On worker death the :class:`PoolBackend`
wrapper must fail over to serial direct-feed without losing the epoch.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import FCMSketch
from repro.engine import PersistentShardPool, PoolBackend, shard_of
from repro.errors import SketchCompatibilityError, WorkerPoolError
from repro.sketches import CUSketch
from repro.traffic import zipf_trace

MEMORY = 16 * 1024


def fcm_factory():
    return FCMSketch.with_memory(MEMORY, seed=3)


def serial_state(keys):
    sketch = fcm_factory()
    sketch.ingest(keys)
    return sketch.to_state()


@pytest.fixture(scope="module")
def keys():
    return zipf_trace(40_000, alpha=1.2, seed=9).keys


# ----------------------------------------------------------------------
# hash partitioning
# ----------------------------------------------------------------------

class TestShardOf:
    def test_partition_is_total_and_deterministic(self, keys):
        shards = shard_of(keys, 3)
        assert shards.shape == keys.shape
        assert set(np.unique(shards)) <= {0, 1, 2}
        assert np.array_equal(shards, shard_of(keys, 3))
        # Partitioning by mask recovers every packet exactly once.
        total = sum(int((shards == s).sum()) for s in range(3))
        assert total == keys.shape[0]

    def test_single_shard_takes_everything(self, keys):
        assert (shard_of(keys, 1) == 0).all()

    def test_spreads_across_shards(self, keys):
        # The mixer must not collapse a zipf key space onto one shard.
        counts = np.bincount(shard_of(keys, 4).astype(np.int64),
                             minlength=4)
        assert (counts > 0).all()


# ----------------------------------------------------------------------
# lifecycle: persistent workers across epoch seals
# ----------------------------------------------------------------------

class TestPoolLifecycle:
    def test_three_epoch_rotations_byte_identical_same_workers(self, keys):
        """One pool, three sealed epochs: every seal byte-identical to
        serial, with the *same* worker processes throughout (the whole
        point of persistence — no per-epoch spawn)."""
        epochs = np.array_split(keys, 3)
        with PersistentShardPool(fcm_factory, num_shards=2) as pool:
            pids = None
            for index, epoch_keys in enumerate(epochs):
                for start in range(0, epoch_keys.shape[0], 4096):
                    pool.publish(epoch_keys[start:start + 4096])
                if pids is None:
                    pids = pool.worker_pids()
                    assert len(pids) == 2
                merged = pool.seal(epoch=index)
                assert merged.to_state() == serial_state(epoch_keys)
                assert pool.worker_pids() == pids
            assert pool.seals == 3

    def test_seal_resets_shard_state_between_epochs(self, keys):
        with PersistentShardPool(fcm_factory, num_shards=2) as pool:
            pool.publish(keys)
            first = pool.seal(epoch=0)
            pool.publish(keys)
            second = pool.seal(epoch=1)
        # Equal states, not accumulated ones: epoch 1 saw only its own
        # packets.
        assert first.to_state() == second.to_state()

    def test_seal_before_any_publish_returns_fresh_sketch(self):
        pool = PersistentShardPool(fcm_factory, num_shards=2)
        try:
            assert pool.seal().to_state() == fcm_factory().to_state()
            assert not pool.started
        finally:
            pool.close()

    def test_slab_ring_wraps_and_reuses(self, keys):
        """More batches than slabs forces ring reuse under the
        ack-gate; determinism must survive the wrap."""
        with PersistentShardPool(fcm_factory, num_shards=2,
                                 slab_packets=2048,
                                 num_slabs=2) as pool:
            pool.publish(keys)  # 40k keys -> 20 slab-sized chunks
            assert pool.published_batches > pool.num_slabs
            merged = pool.seal()
            assert merged.to_state() == serial_state(keys)

    def test_snapshot_is_consistent_mid_epoch(self, keys):
        half = keys.shape[0] // 2
        with PersistentShardPool(fcm_factory, num_shards=2) as pool:
            pool.publish(keys[:half])
            snap = pool.snapshot()
            assert snap.to_state() == serial_state(keys[:half])
            # The snapshot barrier must not reset shard state.
            pool.publish(keys[half:])
            assert pool.seal().to_state() == serial_state(keys)


# ----------------------------------------------------------------------
# teardown: shared memory is provably released
# ----------------------------------------------------------------------

class TestPoolTeardown:
    def test_slabs_unlinked_on_close(self, keys):
        pool = PersistentShardPool(fcm_factory, num_shards=2)
        pool.publish(keys[:4096])
        names = list(pool.slab_names)
        assert names
        pool.seal()
        pool.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        pool.close()  # idempotent

    def test_publish_after_close_raises(self, keys):
        pool = PersistentShardPool(fcm_factory, num_shards=2)
        pool.close()
        with pytest.raises(WorkerPoolError):
            pool.publish(keys[:64])

    def test_no_resource_tracker_noise_at_interpreter_exit(self):
        """A full publish/seal/close cycle in a pristine interpreter
        must leave no resource_tracker complaints on stderr (leaked or
        double-unregistered segments both warn loudly there)."""
        src = str(pathlib.Path(__file__).parent.parent / "src")
        script = (
            "import numpy as np\n"
            "from repro.core import FCMSketch\n"
            "from repro.engine import PersistentShardPool\n"
            "def factory():\n"
            "    return FCMSketch.with_memory(16 * 1024, seed=3)\n"
            "pool = PersistentShardPool(factory, num_shards=2)\n"
            "pool.publish(np.arange(20000, dtype=np.uint64) % 997)\n"
            "pool.seal()\n"
            "pool.close()\n"
            "print('OK')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True,
                              timeout=120, env=env)
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr


# ----------------------------------------------------------------------
# protocol enforcement
# ----------------------------------------------------------------------

class TestPoolValidation:
    def test_unmergeable_factory_rejected_up_front(self):
        with pytest.raises(SketchCompatibilityError):
            PersistentShardPool(lambda: CUSketch(MEMORY, seed=3))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            PersistentShardPool(fcm_factory, num_shards=0)
        with pytest.raises(ValueError):
            PersistentShardPool(fcm_factory, slab_packets=0)
        with pytest.raises(ValueError):
            PersistentShardPool(fcm_factory, num_slabs=0)


# ----------------------------------------------------------------------
# chaos: worker death mid-epoch
# ----------------------------------------------------------------------

@pytest.mark.chaos
class TestPoolChaos:
    def test_worker_kill_fails_over_without_losing_the_epoch(self, keys):
        """SIGKILL one worker mid-epoch: the PoolBackend must detect
        the death, replay the retained batches into a serial inline
        backend, and seal an epoch byte-identical to serial ingest."""
        backend = PoolBackend(fcm_factory, num_shards=2)
        try:
            first, second = np.array_split(keys, 2)
            for start in range(0, first.shape[0], 4096):
                backend.ingest_batch(first[start:start + 4096])
            victim = backend.pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.2)
            for start in range(0, second.shape[0], 4096):
                backend.ingest_batch(second[start:start + 4096])
            blob = backend.seal(0)
            assert blob == serial_state(keys)
            assert backend.failed_over is True
            info = backend.describe()
            assert info["failed_over"] is True
            assert "failover_reason" in info
        finally:
            backend.close()

    def test_failed_over_backend_keeps_sealing_serially(self, keys):
        backend = PoolBackend(fcm_factory, num_shards=2)
        try:
            backend.ingest_batch(keys[:4096])
            os.kill(backend.pool.worker_pids()[0], signal.SIGKILL)
            time.sleep(0.2)
            backend.ingest_batch(keys[4096:8192])
            assert backend.seal(0) == serial_state(keys[:8192])
            # The next epoch stays on the serial path and stays exact.
            backend.ingest_batch(keys[8192:12288])
            assert backend.seal(1) == serial_state(keys[8192:12288])
        finally:
            backend.close()
