"""Tests for resource accounting (Tables 4-5) and the TCAM cardinality
table (Appendix C)."""

import pytest

from repro.core import FCMConfig
from repro.dataplane import (
    LITERATURE_SOLUTIONS,
    SWITCH_P4,
    TcamCardinalityTable,
    cm_topk_resources,
    fcm_resources,
    fcm_topk_resources,
)
from repro.sketches.linear_counting import linear_counting_estimate


def paper_config() -> FCMConfig:
    """The hardware evaluation's configuration: ~1.3 MB, 2 trees."""
    return FCMConfig().with_memory(1_300_000)


class TestTable4:
    def test_fcm_sram_close_to_table4(self):
        report = fcm_resources(paper_config())
        assert report.sram_pct == pytest.approx(9.38, rel=0.10)

    def test_fcm_salu_matches_table4(self):
        report = fcm_resources(paper_config())
        assert report.salu_pct == pytest.approx(12.50, rel=0.01)

    def test_fcm_stages_match_table4(self):
        assert fcm_resources(paper_config()).stages == 4

    def test_fcm_hash_bits_small(self):
        report = fcm_resources(paper_config())
        assert report.hash_bits_pct == pytest.approx(2.02, rel=0.30)

    def test_fcm_topk_matches_table4(self):
        report = fcm_topk_resources(paper_config())
        assert report.stages == 8
        assert report.salu_pct == pytest.approx(20.83, rel=0.01)
        assert report.sram_pct == pytest.approx(9.48, rel=0.10)

    def test_fcm_uses_no_tcam(self):
        assert fcm_resources(paper_config()).tcam_pct == 0.0

    def test_cardinality_query_overhead(self):
        """§8.3: queries add ~10.42% sALUs, one stage and <10 TCAM
        entries."""
        base = fcm_resources(paper_config())
        with_q = fcm_resources(paper_config(), with_queries=True)
        assert with_q.stages == base.stages + 1
        assert with_q.salu_pct > base.salu_pct
        assert with_q.tcam_pct > 0

    def test_switch_p4_constants(self):
        assert SWITCH_P4.stages == 12
        assert SWITCH_P4.sram_pct == 30.52


class TestFigure14a:
    def test_normalization_baseline_is_one(self):
        report = fcm_resources(paper_config())
        ratios = report.normalized_to(report)
        assert all(v == pytest.approx(1.0) for v in ratios.values())

    def test_fcm_topk_uses_double_stages(self):
        base = fcm_resources(paper_config())
        topk = fcm_topk_resources(paper_config())
        ratios = topk.normalized_to(base)
        assert ratios["Physical Stages"] == pytest.approx(2.0)
        assert ratios["Stateful ALU"] == pytest.approx(10 / 6, rel=0.01)

    def test_cm_topk_variants_ordered(self):
        """More CM rows => more sALUs and hash bits (Figure 14a)."""
        width = 600_000
        reports = [cm_topk_resources(d, width) for d in (2, 4, 8)]
        salus = [r.salu_pct for r in reports]
        hashes = [r.hash_bits_pct for r in reports]
        assert salus == sorted(salus)
        assert hashes == sorted(hashes)

    def test_cm_topk_similar_sram_to_fcm(self):
        """Figure 14's setup: comparable SRAM across alternatives."""
        fcm = fcm_resources(paper_config())
        cm2 = cm_topk_resources(2, 600_000)
        assert cm2.sram_pct == pytest.approx(fcm.sram_pct, rel=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            cm_topk_resources(0, 100)


class TestTable5:
    def test_literature_rows_present(self):
        for name in ("SketchLearn", "QPipe", "SpreadSketch", "HashPipe",
                     "ElasticSketch", "UnivMon"):
            assert name in LITERATURE_SOLUTIONS

    def test_fcm_beats_generic_competitors(self):
        """Table 5's claim: FCM uses fewer stages and sALUs than the
        other generic Tofino solutions."""
        fcm = fcm_resources(paper_config())
        sketchlearn = LITERATURE_SOLUTIONS["SketchLearn"]
        assert fcm.stages < sketchlearn["stages"]
        assert fcm.salu_pct < sketchlearn["salu_pct"]


class TestTcamTable:
    def test_two_orders_of_magnitude_compression(self):
        """Appendix C: the table is ~100x smaller than one entry per
        possible w0."""
        table = TcamCardinalityTable(leaf_width=500_000,
                                     error_bound=0.002)
        assert len(table) < 500_000 / 50

    def test_added_error_within_bound(self):
        table = TcamCardinalityTable(leaf_width=100_000,
                                     error_bound=0.002)
        assert table.worst_case_added_error() <= 0.002 + 1e-9

    def test_lookup_never_underestimates(self):
        table = TcamCardinalityTable(leaf_width=10_000)
        for w0 in (1, 10, 500, 5000, 9999):
            exact = linear_counting_estimate(w0, 10_000)
            assert table.lookup(w0) >= exact - 1e-9

    def test_exact_at_installed_entries(self):
        table = TcamCardinalityTable(leaf_width=5000)
        for w0 in table.entries[:20]:
            assert table.lookup(w0) == pytest.approx(
                linear_counting_estimate(w0, 5000)
            )

    def test_untouched_sketch_maps_to_zero(self):
        table = TcamCardinalityTable(leaf_width=1000)
        assert table.lookup(1000) == 0.0

    def test_tighter_bound_needs_more_entries(self):
        loose = TcamCardinalityTable(10_000, error_bound=0.01)
        tight = TcamCardinalityTable(10_000, error_bound=0.001)
        assert len(tight) > len(loose)

    def test_validation(self):
        with pytest.raises(ValueError):
            TcamCardinalityTable(1)
        with pytest.raises(ValueError):
            TcamCardinalityTable(100, error_bound=0)
        table = TcamCardinalityTable(100)
        with pytest.raises(ValueError):
            table.lookup(101)
