"""Empty-input regression tests.

Every bulk entry point must tolerate zero-length input: ``ingest`` of
an empty array is a no-op, ``query_many`` of an empty key set returns
an empty array, and the estimators defined on an untouched sketch
return finite values.  These paths are easy to break with a stray
``reshape``/``min`` over an empty axis, so they are pinned here for
the whole sketch zoo.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.controlplane.distribution import estimate_distribution
from repro.core import FCMSketch, FCMTopK
from repro.errors import IngestTypeError
from repro.sketches import (
    ColdFilterSketch,
    CountMinSketch,
    CountSketch,
    CUSketch,
    ElasticSketch,
    HashPipe,
    MRAC,
    PyramidCMSketch,
    UnivMon,
)
from repro.telemetry import MemoryExporter, MetricsRegistry

MEMORY = 32 * 1024

FACTORIES = {
    "fcm": lambda: FCMSketch.with_memory(MEMORY, seed=1),
    "fcm_topk": lambda: FCMTopK(MEMORY, seed=1),
    "cm": lambda: CountMinSketch(MEMORY, seed=1),
    "cu": lambda: CUSketch(MEMORY, seed=1),
    "countsketch": lambda: CountSketch(MEMORY, seed=1),
    "elastic": lambda: ElasticSketch(MEMORY, seed=1),
    "coldfilter": lambda: ColdFilterSketch(MEMORY, seed=1),
    "hashpipe": lambda: HashPipe(MEMORY, seed=1),
    "pcm": lambda: PyramidCMSketch(MEMORY, seed=1),
    "univmon": lambda: UnivMon(MEMORY, seed=1),
    "mrac": lambda: MRAC(MEMORY, seed=1),
}

#: The sketches whose batch path validates key dtypes through
#: ``repro.sketches.batching.require_key_batch``.
ORDER_DEPENDENT = ["cu", "elastic", "coldfilter", "fcm_topk", "hashpipe"]

EMPTY_KEYS = (
    np.array([], dtype=np.uint64),
    [],
)


@pytest.mark.parametrize("name", sorted(FACTORIES))
@pytest.mark.parametrize("empty", EMPTY_KEYS,
                         ids=["ndarray", "list"])
def test_ingest_empty_is_noop(name, empty):
    sketch = FACTORIES[name]()
    sketch.ingest(np.asarray(empty, dtype=np.uint64))
    assert sketch.query(12345) >= 0


@pytest.mark.parametrize("name", sorted(FACTORIES))
@pytest.mark.parametrize("empty", EMPTY_KEYS,
                         ids=["ndarray", "list"])
def test_query_many_empty_returns_empty(name, empty):
    sketch = FACTORIES[name]()
    sketch.ingest(np.arange(100, dtype=np.uint64))
    result = np.asarray(sketch.query_many(empty))
    assert result.shape == (0,)


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_heavy_hitters_empty_candidates(name):
    """Empty candidate sets must not raise.

    Sketches with their own heavy-key tables (Elastic, FCM+TopK,
    UnivMon) may still report resident flows; candidate-driven
    sketches must return the empty set.
    """
    sketch = FACTORIES[name]()
    if not hasattr(sketch, "heavy_hitters"):
        pytest.skip(f"{name} has no heavy_hitters")
    ingested = np.arange(100, dtype=np.uint64)
    sketch.ingest(ingested)
    hitters = sketch.heavy_hitters([], threshold=1)
    assert isinstance(hitters, set)
    assert hitters <= {int(k) for k in ingested}


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_cardinality_of_empty_sketch_is_finite(name):
    sketch = FACTORIES[name]()
    if not hasattr(sketch, "cardinality"):
        pytest.skip(f"{name} has no cardinality")
    estimate = sketch.cardinality()
    assert math.isfinite(float(estimate))
    assert estimate >= 0


@pytest.mark.parametrize("name", ORDER_DEPENDENT)
def test_ingest_empty_of_any_dtype_is_noop(name):
    """Empty batches are a no-op regardless of dtype — a zero-length
    float array carries no values to misinterpret."""
    for empty in (np.array([], dtype=np.float64),
                  np.array([], dtype=np.int32),
                  np.array([], dtype=object),
                  []):
        sketch = FACTORIES[name]()
        sketch.ingest(empty)
        assert sketch.query(12345) >= 0


@pytest.mark.parametrize("name", ORDER_DEPENDENT)
@pytest.mark.parametrize("bad", [
    np.array([1.0, 2.5], dtype=np.float64),
    np.array([1.5], dtype=np.float32),
    np.array(["a", "b"]),
    np.array([1, "b"], dtype=object),
    np.array([True, False]),
], ids=["float64", "float32", "strings", "mixed_object", "bool"])
def test_ingest_rejects_unusable_dtypes(name, bad):
    """Float/string/bool batches raise the typed IngestTypeError
    instead of being silently astype-truncated into wrong flow keys."""
    sketch = FACTORIES[name]()
    with pytest.raises(IngestTypeError):
        sketch.ingest(bad)
    # The typed error is also a TypeError for generic callers.
    assert issubclass(IngestTypeError, TypeError)


@pytest.mark.parametrize("name", ORDER_DEPENDENT)
def test_ingest_rejects_negative_keys(name):
    sketch = FACTORIES[name]()
    with pytest.raises(IngestTypeError):
        sketch.ingest(np.array([3, -1], dtype=np.int64))


@pytest.mark.parametrize("name", ORDER_DEPENDENT)
def test_ingest_accepts_nonnegative_signed_and_python_ints(name):
    """int32/int64 arrays of non-negative keys and plain Python lists
    keep working — validation only rejects lossy conversions."""
    for keys in (np.array([1, 2, 2, 7], dtype=np.int32),
                 np.array([1, 2, 2, 7], dtype=np.int64),
                 [1, 2, 2, 7],
                 (1, 2, 2, 7),
                 range(8)):
        sketch = FACTORIES[name]()
        sketch.ingest(keys)
        assert sketch.query(2) >= 0


def test_estimate_distribution_on_empty_fcm():
    sketch = FCMSketch.with_memory(MEMORY, seed=1)
    result = estimate_distribution(sketch, iterations=2)
    assert float(result.size_counts.sum()) == pytest.approx(0.0)


def test_empty_ingest_with_telemetry_counts_zero_packets():
    exporter = MemoryExporter()
    registry = MetricsRegistry(exporter=exporter)
    sketch = FCMSketch.with_memory(MEMORY, seed=1, telemetry=registry)
    sketch.ingest(np.array([], dtype=np.uint64))
    snap = registry.snapshot()
    assert snap["fcm.ingest.calls"] == 1
    assert snap["fcm.ingest.packets"] == 0
    assert exporter.events[0].fields["packets"] == 0


def test_query_many_empty_with_telemetry():
    registry = MetricsRegistry()
    sketch = FCMSketch.with_memory(MEMORY, seed=1, telemetry=registry)
    out = sketch.query_many(np.array([], dtype=np.uint64))
    assert out.shape == (0,)
    assert registry.snapshot()["fcm.query.keys"] == 0


def test_fcm_ingest_weighted_empty():
    sketch = FCMSketch.with_memory(MEMORY, seed=1)
    sketch.ingest_weighted(np.array([], dtype=np.uint64),
                           np.array([], dtype=np.int64))
    assert sketch.total_packets == 0


def test_merge_of_empty_sketches_is_empty():
    a = FCMSketch.with_memory(MEMORY, seed=1)
    b = FCMSketch.with_memory(MEMORY, seed=1)
    a.merge(b)
    assert a.total_packets == 0
    assert np.asarray(
        a.query_many(np.arange(10, dtype=np.uint64))
    ).max() == 0
