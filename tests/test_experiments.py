"""Tests for the replication harness."""

import pytest

from repro.experiments import ReplicationSummary, replicate, replicate_many


class TestReplicate:
    def test_summary_statistics(self):
        summary = replicate(lambda seed: float(seed), seeds=range(11))
        assert summary.mean == 5.0
        assert summary.median == 5.0
        assert summary.p10 == pytest.approx(1.0)
        assert summary.p90 == pytest.approx(9.0)
        assert summary.spread == pytest.approx(8.0)

    def test_single_seed(self):
        summary = replicate(lambda seed: 3.0, seeds=[7])
        assert summary.mean == summary.p10 == summary.p90 == 3.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: 0.0, seeds=[])

    def test_as_dict(self):
        d = replicate(lambda seed: 1.0, seeds=range(3)).as_dict()
        assert set(d) == {"mean", "median", "p10", "p90"}


class TestReplicateMany:
    def test_multiple_metrics(self):
        summaries = replicate_many(
            lambda seed: {"a": seed, "b": seed * 2.0}, seeds=range(5)
        )
        assert summaries["a"].mean == 2.0
        assert summaries["b"].mean == 4.0

    def test_inconsistent_metrics_rejected(self):
        def run(seed):
            return {"a": 1.0} if seed == 0 else {"b": 1.0}

        with pytest.raises(ValueError):
            replicate_many(run, seeds=range(2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            replicate_many(lambda seed: {"a": 0.0}, seeds=[])

    def test_values_preserved(self):
        summary = replicate(lambda seed: float(seed), seeds=[3, 1, 2])
        assert summary.values == (3.0, 1.0, 2.0)
        assert isinstance(summary, ReplicationSummary)
