"""Edge cases: very large keys, degenerate widths, hash boundaries."""

import numpy as np
import pytest

from repro.hashing import HashFamily, bobhash
from repro.traffic.flow import FiveTuple


class TestLargeKeys:
    def test_five_tuple_key_exceeds_64_bits(self):
        ft = FiveTuple(src_ip=0xFFFFFFFF, dst_ip=0xFFFFFFFF,
                       src_port=0xFFFF, dst_port=0xFFFF, protocol=0xFF)
        key = ft.to_key()
        assert key.bit_length() > 64
        assert FiveTuple.from_key(key) == ft

    def test_scalar_hash_masks_large_keys(self):
        """Scalar hashing folds >64-bit keys instead of crashing."""
        ft = FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4,
                       protocol=6)
        h = HashFamily(1)
        value = h.hash64(ft.to_key())
        assert 0 <= value < 2**64

    def test_uint64_extremes(self):
        h = HashFamily(2)
        for key in (0, 1, 2**63, 2**64 - 1):
            idx = h.index(key, 97)
            assert 0 <= idx < 97


class TestWidthEdges:
    def test_width_one(self):
        h = HashFamily(3)
        assert h.index(12345, 1) == 0
        arr = h.index(np.arange(10, dtype=np.uint64), 1)
        assert np.all(arr == 0)

    def test_non_power_of_two_width_uniform(self):
        h = HashFamily(4)
        idx = h.index(np.arange(30_000, dtype=np.uint64), 7)
        counts = np.bincount(idx, minlength=7)
        assert counts.min() > 0.8 * 30_000 / 7


class TestBobhashEdges:
    def test_exactly_twelve_bytes(self):
        # 12 bytes hits the mix-loop boundary with an empty tail.
        assert bobhash(b"abcdefghijkl", 0) != bobhash(b"abcdefghijk", 0)

    def test_thirteen_bytes(self):
        a = bobhash(b"abcdefghijklm", 0)
        assert 0 <= a <= 0xFFFFFFFF

    def test_seed_is_32_bit_masked(self):
        assert bobhash(b"x", 2**32) == bobhash(b"x", 0)
