"""Measurement-service tests: policies, watchdog failover, drain.

The acceptance criterion of the service layer is exercised directly
here: the graceful-shutdown drain passes under **every** backpressure
policy and under an injected ingest stall — the live epoch is sealed,
zero accepted-and-ingested packets are lost, and the conservation
ledger ``accepted == ingested + shed`` is exact and exported through
telemetry.

No pytest-asyncio in the toolchain: every async scenario runs through
``asyncio.run`` inside a plain sync test, with a hard ``wait_for``
lid so a hung event loop fails instead of hanging the suite.
"""

import asyncio

import numpy as np
import pytest

from repro.core import FCMSketch
from repro.errors import ServiceClosedError
from repro.robustness import DegradationLevel
from repro.robustness.policy import CollectionPolicy, RetryPolicy
from repro.runtime import EpochConfig, EpochManager
from repro.service import (
    BackpressurePolicy,
    MeasurementService,
    PressureConfig,
    SimulatedSource,
    trace_sources,
)
from repro.telemetry import MemoryExporter, MetricsRegistry
from repro.traffic import zipf_trace

POLICIES = [p.value for p in BackpressurePolicy]

LID = 30.0     # hard per-scenario wall-clock lid (hung-loop guard)


def run_async(coro):
    async def lidded():
        return await asyncio.wait_for(coro, timeout=LID)
    return asyncio.run(lidded())


def make_manager(epoch_packets=8_000, retention=64, telemetry=None):
    return EpochManager(lambda: FCMSketch.with_memory(64 * 1024),
                        config=EpochConfig(epoch_packets=epoch_packets,
                                           retention=retention),
                        telemetry=telemetry)


def make_service(policy="block", *, epoch_packets=8_000,
                 source_packets=2_048, global_packets=4_096,
                 telemetry=None, **kwargs):
    manager = make_manager(epoch_packets=epoch_packets,
                           telemetry=telemetry)
    pressure = PressureConfig(policy=policy,
                              source_packets=source_packets,
                              global_packets=global_packets)
    return MeasurementService(manager, pressure=pressure,
                              telemetry=telemetry, **kwargs)


def small_trace(packets=30_000, seed=7):
    return zipf_trace(packets, alpha=1.2, seed=seed)


async def stall_forever():
    await asyncio.Event().wait()


def tight_watchdog(threshold=2):
    """Real but small timeouts so stall tests finish in well under LID."""
    return CollectionPolicy(timeout=0.05,
                            retry=RetryPolicy(max_attempts=1,
                                              base_delay=0.0),
                            breaker_threshold=threshold,
                            breaker_cooldown=100)


class TestPolicies:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_drain_conserves_under_policy(self, policy):
        trace = small_trace()
        service = make_service(policy, worker_batch=1_024)
        report = run_async(service.run(
            trace_sources(trace.keys, num_sources=4, batch=997)))
        assert report.conserved, report.ledger_line()
        assert report.accepted == len(trace)
        assert report.live_packets == 0
        # Every ingested packet reached a sealed epoch.
        assert service.manager.packets_fed == report.ingested
        assert sum(e.packets for e in service.manager.store) \
            == report.ingested

    def test_block_is_lossless(self):
        trace = small_trace()
        service = make_service("block", worker_batch=512,
                               source_packets=512, global_packets=1_024)
        report = run_async(service.run(
            trace_sources(trace.keys, num_sources=3, batch=499)))
        assert report.conserved
        assert report.shed == 0
        assert report.ingested == len(trace)
        assert report.degraded_epochs == {}

    def test_shedding_policies_shed_under_pressure(self):
        keys = np.arange(40_000, dtype=np.uint64) % 1_000
        for policy, counter in (("shed-newest", "shed_newest"),
                                ("shed-oldest", "shed_oldest"),
                                ("degrade-sample", "sampled_out")):
            service = make_service(policy, worker_batch=256,
                                   source_packets=2_048,
                                   global_packets=2_048)
            # One giant burst with a tiny worker batch forces pressure.
            src = SimulatedSource("burst", [keys[i:i + 1_000]
                                            for i in range(0, 40_000,
                                                           1_000)],
                                  burst=40)
            report = run_async(service.run([src]))
            assert report.conserved, (policy, report.ledger_line())
            assert report.shed > 0, policy
            assert getattr(report, counter) > 0, policy
            assert report.pressure_transitions > 0, policy
            assert report.queue_high_water >= 2_048 * 3 // 4, policy

    def test_degrade_sample_records_rate_and_tags_epochs(self):
        keys = np.zeros(30_000, dtype=np.uint64)
        service = make_service("degrade-sample", epoch_packets=4_000,
                               worker_batch=256, source_packets=2_048,
                               global_packets=2_048)
        src = SimulatedSource("hose", [keys[i:i + 1_500]
                                       for i in range(0, 30_000, 1_500)],
                              burst=20)
        report = run_async(service.run([src]))
        assert report.conserved
        assert report.sampled_out > 0
        assert report.min_sample_rate < 1.0
        assert report.min_sample_rate \
            >= service.pressure_config.sample_floor
        assert report.degraded_epochs    # at least one epoch tagged
        for level in report.degraded_epochs.values():
            assert level in (DegradationLevel.DEGRADED,
                             DegradationLevel.CRITICAL)

    def test_degrade_sample_is_deterministic(self):
        keys = np.arange(20_000, dtype=np.uint64) % 97

        def one_run():
            service = make_service("degrade-sample", worker_batch=128,
                                   source_packets=1_024,
                                   global_packets=1_024)
            src = SimulatedSource("s", [keys[i:i + 640]
                                        for i in range(0, 20_000, 640)],
                                  burst=100)
            report = run_async(service.run([src]))
            return (report.accepted, report.ingested, report.shed,
                    report.sampled_out, report.min_sample_rate)

        assert one_run() == one_run()


class TestWatchdog:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_drain_exact_under_ingest_stall(self, policy):
        """The acceptance criterion: drain stays exact under every
        policy with the ingest worker hard-stalled."""
        trace = small_trace(20_000)
        service = make_service(policy, worker_batch=1_024,
                               watchdog=tight_watchdog(),
                               ingest_fault=stall_forever)
        sources = trace_sources(trace.keys, num_sources=3, batch=997)
        for source in sources:
            source.delay = 0.02    # keep feeding past the stall window
        report = run_async(service.run(sources))
        assert report.conserved, (policy, report.ledger_line())
        assert report.stalls >= 1
        assert report.failovers >= 1
        assert report.live_packets == 0
        assert service.manager.packets_fed == report.ingested
        assert sum(e.packets for e in service.manager.store) \
            == report.ingested

    def test_breaker_opens_into_direct_mode(self):
        keys = np.arange(12_000, dtype=np.uint64) % 300
        exporter = MemoryExporter()
        telemetry = MetricsRegistry(exporter=exporter)
        service = make_service("block", worker_batch=512,
                               watchdog=tight_watchdog(threshold=2),
                               ingest_fault=stall_forever,
                               telemetry=telemetry)
        report = run_async(service.run(
            trace_sources(keys, num_sources=2, batch=500)))
        assert report.conserved
        assert report.stalls >= 2
        assert service.direct       # breaker open: permanent failover
        assert report.ingested == keys.size    # direct feed lost nothing
        kinds = {e.kind for e in exporter.events}
        assert "stall" in kinds and "failover" in kinds
        span_names = {e.name for e in exporter.events
                      if e.kind == "span"}
        assert "service.failover" in span_names

    def test_single_stall_restarts_worker(self):
        """One stall with a generous breaker: the worker is restarted
        and finishes the job itself (no permanent direct mode)."""
        fired = False

        async def stall_once():
            nonlocal fired
            if not fired:
                fired = True
                await asyncio.Event().wait()

        keys = np.arange(6_000, dtype=np.uint64) % 100
        service = make_service("block", worker_batch=512,
                               watchdog=tight_watchdog(threshold=5),
                               ingest_fault=stall_once)
        report = run_async(service.run(
            trace_sources(keys, num_sources=2, batch=500)))
        assert report.conserved
        assert report.stalls == 1
        assert not service.direct


class TestShutdown:
    def test_submit_after_drain_refused(self):
        async def scenario():
            service = make_service("block")
            await service.start()
            await service.submit("a", np.arange(100, dtype=np.uint64))
            await service.drain()
            with pytest.raises(ServiceClosedError):
                await service.submit("a", np.arange(5, dtype=np.uint64))

        run_async(scenario())

    def test_blocked_producer_refused_at_drain(self):
        """A producer parked by BLOCK is woken at drain; its deferred
        packets were never accepted, so the ledger stays exact."""
        async def scenario():
            service = make_service("block", source_packets=256,
                                   global_packets=256)
            # No worker: the queue can only fill up.
            big = np.arange(1_000, dtype=np.uint64)
            submit = asyncio.create_task(service.submit("a", big))
            await asyncio.sleep(0.01)
            assert not submit.done()       # parked on queue room
            report = await service.drain()
            with pytest.raises(ServiceClosedError):
                await submit
            assert report.conserved
            assert report.accepted == 256   # only what fit was accepted
            assert report.ingested == 256
            assert service.sources["a"].waits >= 1

        run_async(scenario())

    def test_drain_seals_live_epoch(self):
        async def scenario():
            service = make_service("block", epoch_packets=1_000_000)
            await service.start()
            await service.submit("a", np.arange(500, dtype=np.uint64))
            report = await service.drain()
            assert report.sealed_epochs == 1
            assert report.retained_epochs == 1
            store = service.manager.store
            assert store[0].packets == 500
            assert store[0].reason == "close"
            return report

        report = run_async(scenario())
        assert report.conserved

    def test_ledger_exported_via_telemetry(self):
        exporter = MemoryExporter()
        telemetry = MetricsRegistry(exporter=exporter)
        trace = small_trace(10_000)
        service = make_service("shed-oldest", worker_batch=512,
                               source_packets=1_024,
                               global_packets=1_024,
                               telemetry=telemetry)
        report = run_async(service.run(
            trace_sources(trace.keys, num_sources=2, batch=500)))
        snap = telemetry.snapshot()
        assert snap["service.ledger.accepted"] == float(report.accepted)
        assert snap["service.ledger.ingested"] == float(report.ingested)
        assert snap["service.ledger.shed"] == float(report.shed)
        assert snap["service.queue.high_water"] \
            == float(report.queue_high_water)
        drains = [e for e in exporter.events if e.kind == "drain"]
        assert len(drains) == 1
        assert drains[0].fields["conserved"] is True
        assert drains[0].fields["accepted"] == report.accepted
        span_names = {e.name for e in exporter.events
                      if e.kind == "span"}
        assert "service.drain" in span_names

    def test_overload_flips_health_monitor(self):
        from repro.telemetry import HealthStatus, SketchHealthMonitor

        monitor = SketchHealthMonitor()
        keys = np.zeros(20_000, dtype=np.uint64)
        service = make_service("shed-newest", epoch_packets=2_000,
                               worker_batch=128, source_packets=1_024,
                               global_packets=1_024,
                               health_monitor=monitor)
        src = SimulatedSource("hose", [keys[i:i + 1_000]
                                       for i in range(0, 20_000, 1_000)],
                              burst=20)
        report = run_async(service.run([src]))
        assert report.conserved
        assert report.degraded_epochs
        shedding = [e for e in service.manager.store
                    if e.health is not None
                    and e.index in report.degraded_epochs]
        assert shedding
        assert any(e.health.status >= HealthStatus.DEGRADED
                   for e in shedding)


class TestQueries:
    def test_tagged_query_full_and_no_underestimate(self):
        trace = small_trace(20_000)
        service = make_service("block", worker_batch=1_024)
        run_async(service.run(
            trace_sources(trace.keys, num_sources=3, batch=997)))
        truth = trace.ground_truth.flow_sizes
        for key in list(truth.keys())[:50]:
            answer = service.query_tagged(int(key), scope="all")
            assert answer.level is DegradationLevel.FULL
            assert answer.value >= truth[key]

    def test_tagged_query_degrades_over_shed_epochs(self):
        keys = np.zeros(20_000, dtype=np.uint64)
        service = make_service("shed-newest", epoch_packets=2_000,
                               worker_batch=128, source_packets=512,
                               global_packets=512)
        src = SimulatedSource("hose", [keys[i:i + 1_000]
                                       for i in range(0, 20_000, 1_000)],
                              burst=20)
        report = run_async(service.run([src]))
        assert report.degraded_epochs
        tagged = service.query_tagged(0, scope="all")
        assert tagged.level >= DegradationLevel.DEGRADED
        # A scope over clean epochs only reports FULL.
        clean = [idx for idx, lvl in report.epoch_degradation.items()
                 if lvl is DegradationLevel.FULL]
        if clean:
            assert service.query_tagged(0, scope="live").level \
                is DegradationLevel.FULL

    def test_queries_serve_while_rotating(self):
        """Tagged queries issued concurrently with ingest/rotation
        always answer and never underestimate the final total."""
        async def scenario():
            service = make_service("block", epoch_packets=2_000,
                                   worker_batch=512)
            key = 42
            keys = np.full(12_000, key, dtype=np.uint64)
            answers = []

            async def prober():
                while service.in_flight or not service.manager.rotations:
                    answers.append(
                        service.query_tagged(key, scope="all").value)
                    await asyncio.sleep(0)

            await service.start()
            probe = asyncio.create_task(prober())
            for src in trace_sources(keys, num_sources=2, batch=500):
                await src.run(service)
            report = await service.drain()
            await probe
            return service, report, answers

        service, report, answers = run_async(scenario())
        assert report.conserved
        assert answers                        # probes actually ran
        assert answers == sorted(answers)     # monotone accumulation
        assert service.query_tagged(42, scope="all").value >= 12_000


class TestServeCLI:
    def test_serve_subcommand(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "serve.ndjson"
        assert main(["serve", "--packets", "12000", "--sources", "3",
                     "--policy", "shed-oldest",
                     "--queue-packets", "2048",
                     "--source-queue-packets", "1024",
                     "--epoch-packets", "4000",
                     "--worker-batch", "512", "--memory-kb", "32",
                     "--telemetry-out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "ledger: accepted 12000" in captured
        assert "[conserved]" in captured
        assert "pressure:" in captured
        text = out.read_text()
        assert '"name":"service.drain"' in text

    def test_serve_block_policy_lossless(self, capsys):
        from repro.cli import main

        assert main(["serve", "--packets", "9000", "--sources", "2",
                     "--policy", "block", "--queue-packets", "1024",
                     "--source-queue-packets", "512",
                     "--epoch-packets", "3000",
                     "--worker-batch", "256", "--memory-kb", "32",
                     "--workload", "zipf"]) == 0
        captured = capsys.readouterr().out
        assert "ledger: accepted 9000 == ingested 9000 + shed 0" \
            in captured
