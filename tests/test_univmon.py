"""Tests for the UnivMon baseline."""

import numpy as np
import pytest

from repro.errors import SketchMemoryError
from repro.sketches import UnivMon
from repro.traffic import caida_like_trace


@pytest.fixture(scope="module")
def loaded():
    trace = caida_like_trace(num_packets=80_000, seed=31)
    um = UnivMon(128 * 1024, seed=2)
    um.ingest(trace.keys)
    return um, trace


class TestStructure:
    def test_levels_and_memory(self):
        um = UnivMon(64 * 1024, levels=8)
        assert len(um.sketches) == 8
        assert um.memory_bytes <= 64 * 1024

    def test_rejects_tiny_budget(self):
        with pytest.raises(SketchMemoryError):
            UnivMon(256, levels=16)

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            UnivMon(1024, levels=0)

    def test_sampling_halves_per_level(self, loaded):
        um, _ = loaded
        populations = [len(s) for s in um._sampled_keys if s]
        # Monotone non-increasing everywhere; strictly halving-ish
        # while the populations are large enough to be statistical.
        for a, b in zip(populations, populations[1:]):
            assert b <= a
        for a, b in zip(populations[:4], populations[1:5]):
            assert 0.3 * a < b < 0.7 * a


class TestEstimates:
    def test_cardinality(self, loaded):
        um, trace = loaded
        truth = trace.ground_truth.cardinality
        assert um.cardinality() == pytest.approx(truth, rel=0.30)

    def test_entropy(self, loaded):
        um, trace = loaded
        truth = trace.ground_truth.entropy
        assert um.estimate_entropy() == pytest.approx(truth, rel=0.5)

    def test_heavy_hitters_catch_top_flows(self, loaded):
        um, trace = loaded
        gt = trace.ground_truth
        threshold = trace.heavy_hitter_threshold()
        truth = gt.heavy_hitters(threshold)
        reported = um.heavy_hitters([], threshold)
        # UnivMon is the weakest HH detector in the paper; require it
        # to find at least the very top flows.
        top5 = set(sorted(truth, key=gt.size_of, reverse=True)[:5])
        assert top5 <= reported or len(truth) == 0

    def test_g_sum_constant_function(self, loaded):
        """g = 1 over a known-cardinality stream."""
        um, trace = loaded
        g1 = um.g_sum(lambda x: 1.0)
        assert g1 == pytest.approx(trace.ground_truth.cardinality,
                                   rel=0.30)

    def test_scalar_update_path(self):
        um = UnivMon(32 * 1024, levels=4, seed=1)
        for key in range(500):
            um.update(key)
        assert um.cardinality() == pytest.approx(500, rel=0.4)

    def test_empty(self):
        um = UnivMon(32 * 1024, levels=4)
        assert um.g_sum(lambda x: 1.0) == 0.0

    def test_query_nonnegative(self, loaded):
        um, trace = loaded
        est = um.query_many(trace.ground_truth.keys_array()[:200])
        assert np.all(est >= 0)
