"""Tests for the jumping-window sliding measurement extension."""

import numpy as np
import pytest

from repro.controlplane.sliding import JumpingWindowSketch


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            JumpingWindowSketch(0)
        with pytest.raises(ValueError):
            JumpingWindowSketch(100, num_slots=1)
        with pytest.raises(ValueError):
            JumpingWindowSketch(100, num_slots=3)  # not divisible

    def test_slot_sizing(self):
        window = JumpingWindowSketch(1000, num_slots=4)
        assert window.slot_packets == 250


class TestWindowing:
    def test_recent_flow_counted(self):
        window = JumpingWindowSketch(400, num_slots=4,
                                     memory_bytes=8 * 1024)
        for _ in range(50):
            window.update(7)
        assert window.query(7) >= 50

    def test_old_traffic_expires(self):
        window = JumpingWindowSketch(400, num_slots=4,
                                     memory_bytes=8 * 1024)
        # Flow 7 appears, then 2x the window of other traffic passes.
        window.ingest(np.full(100, 7, dtype=np.uint64))
        filler = np.arange(1000, 1800, dtype=np.uint64)
        window.ingest(np.repeat(filler, 1))
        assert window.query(7) == 0

    def test_live_packet_accounting(self):
        window = JumpingWindowSketch(400, num_slots=4,
                                     memory_bytes=8 * 1024)
        window.ingest(np.arange(150, dtype=np.uint64))
        assert window.packets_seen == 150
        assert window.live_packets == 150
        window.ingest(np.arange(1000, dtype=np.uint64))
        # At most a full window is live.
        assert window.live_packets <= 400

    def test_never_underestimates_live_span(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 50, size=2000, dtype=np.uint64)
        window = JumpingWindowSketch(800, num_slots=4,
                                     memory_bytes=16 * 1024)
        window.ingest(stream)
        live = stream[-window.live_packets:]
        uniq, counts = np.unique(live, return_counts=True)
        estimates = window.query_many(uniq)
        assert np.all(estimates >= counts)

    def test_ingest_matches_scalar_updates(self):
        a = JumpingWindowSketch(200, num_slots=2, memory_bytes=8 * 1024,
                                seed=2)
        b = JumpingWindowSketch(200, num_slots=2, memory_bytes=8 * 1024,
                                seed=2)
        stream = (np.arange(500, dtype=np.uint64) * 7) % 40
        a.ingest(stream)
        for key in stream:
            b.update(int(key))
        uniq = np.unique(stream)
        assert np.array_equal(a.query_many(uniq), b.query_many(uniq))

    def test_heavy_hitters_windowed(self):
        window = JumpingWindowSketch(400, num_slots=4,
                                     memory_bytes=8 * 1024)
        window.ingest(np.concatenate([
            np.full(200, 9, dtype=np.uint64),
            np.arange(100, dtype=np.uint64),
        ]))
        assert 9 in window.heavy_hitters([9, 1], threshold=100)
        with pytest.raises(ValueError):
            window.heavy_hitters([9], 0)
        assert window.heavy_hitters([], 10) == set()
