"""Tests for the perf-regression gate (benchmarks.baseline --compare).

The comparison layer is pure functions over records, so almost
everything here runs without timing anything; two end-to-end tests run
``main(["--compare", ...])`` at a tiny packet budget against synthetic
baselines engineered to pass and to regress.
"""

import json
import pathlib
import sys

import pytest

# benchmarks/ lives at the repo root, beside tests/
sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from benchmarks.baseline import (  # noqa: E402
    DEFAULT_TOLERANCES,
    GATE_OK,
    GATE_SKIPPED,
    append_trajectory,
    compare_records,
    flatten_metrics,
    load_tolerances,
    main,
    tolerance_for,
    trajectory_entry,
    validate_record,
)


def make_parallel_section(packets=2_000, ingest_pps=1e6, gate="ok",
                          speedup_vs_serial=2.0, cpus=4):
    """One parallel/parallel_paper section as measure_parallel emits."""
    return {
        "packets": packets,
        "flows": 500,
        "shards": 4,
        "backend": "pool",
        "cpus": cpus,
        "gate": gate,
        "serial_ingest_pps": ingest_pps,
        "packet_loop_pps": ingest_pps / 50.0,
        "sharded_ingest_pps": speedup_vs_serial * ingest_pps,
        "speedup_vs_serial": speedup_vs_serial,
        "speedup_vs_packet_loop": 50.0 * speedup_vs_serial,
        "merge_seconds": 0.002,
        "deterministic": True,
        "codec_state_bytes": 40_000,
        "codec_bytes_per_flow": 80.0,
    }


def make_em_parallel_section(gate="ok", speedup_vs_serial=1.8,
                             identical=True, cpus=4):
    """One em_parallel section as measure_em_parallel emits."""
    return {
        "packets": 2_000,
        "iterations": 5,
        "memory_bytes": 16 * 1024,
        "workers": 2,
        "units": 8,
        "cpus": cpus,
        "gate": gate,
        "serial_seconds": 0.05,
        "parallel_seconds": 0.05 / speedup_vs_serial,
        "speedup_vs_serial": speedup_vs_serial,
        "identical": identical,
    }


def make_em_warm_start_section(iterations_saved=5, warm_iterations=4,
                               warm_converged=True):
    """One em_warm_start section as measure_em_warm_start emits."""
    return {
        "packets": 2_000,
        "epochs": 2,
        "cold_iterations": 4,
        "warm_iterations": warm_iterations,
        "iterations_vs_cold": warm_iterations - 4,
        "iterations_saved": iterations_saved,
        "warm_started": True,
        "warm_converged": warm_converged,
    }


def make_record(packets=2_000, ingest_pps=1e6, query_kps=1e5,
                disabled_over_raw=1.0, enabled_over_disabled=1.05,
                em_runtime=0.05, sketches=("fcm",), fallback=None,
                gate="ok", paper=None, em_parallel=None,
                em_warm_start=None):
    """A schema-valid synthetic baseline record.

    ``fallback`` (a fraction in [0, 1]) adds the optional
    ``batch_fallback_fraction`` field to every sketch entry, as the
    batch-conflict-resolution sketches report it.  ``gate`` sets the
    parallel section's cpu-gate marker; ``paper`` (a dict of
    make_parallel_section overrides) adds a ``parallel_paper``
    section.  ``em_parallel``/``em_warm_start`` (override dicts)
    replace fields of the EM sections, which are always present.
    """
    return {
        "schema_version": 1,
        "packets": packets,
        "memory_bytes": 64 * 1024,
        "seed": 1,
        "repeats": 1,
        "sketches": {
            name: {
                "packets": packets,
                "ingest_seconds": packets / ingest_pps,
                "ingest_pps": ingest_pps,
                "query_keys": 1000,
                "query_seconds": 1000 / query_kps,
                "query_kps": query_kps,
                **({} if fallback is None
                   else {"batch_fallback_fraction": fallback}),
            } for name in sketches
        },
        "telemetry_overhead": {
            "ingest_seconds_raw": 0.01,
            "ingest_seconds_disabled": 0.01 * disabled_over_raw,
            "ingest_seconds_enabled":
                0.01 * disabled_over_raw * enabled_over_disabled,
            "disabled_over_raw": disabled_over_raw,
            "enabled_over_disabled": enabled_over_disabled,
            "budget": 1.05,
        },
        "em": {
            "iterations": 5,
            "runtime_seconds": em_runtime,
            "wall_seconds": em_runtime,
            "estimated_flows": 1234.0,
        },
        "em_parallel": make_em_parallel_section(**(em_parallel or {})),
        "em_warm_start": make_em_warm_start_section(
            **(em_warm_start or {})),
        "parallel": make_parallel_section(
            packets=packets, ingest_pps=ingest_pps, gate=gate),
        **({} if paper is None
           else {"parallel_paper": make_parallel_section(**paper)}),
        "service": {
            "packets": packets,
            "sources": 4,
            "policy": "block",
            "seconds": packets / ingest_pps,
            "ingest_pps": ingest_pps,
            "sealed_epochs": 4,
            "shed": 0,
            "conserved": True,
        },
        "obsplane": {
            "packets": packets,
            "metrics_scraped": 40,
            "series": 60,
            "audit_sample_rate": 0.05,
            "scrape_seconds_per_snapshot": 2e-4,
            "render_seconds": 5e-4,
            "audit_seconds_per_epoch": 3e-3,
        },
    }


class TestFlattenMetrics:
    def test_flattens_all_gated_metrics(self):
        flat = flatten_metrics(make_record(sketches=("fcm", "cm")))
        assert set(flat) == {
            "cm.ingest_pps", "cm.query_kps",
            "fcm.ingest_pps", "fcm.query_kps",
            "telemetry.disabled_over_raw",
            "telemetry.enabled_over_disabled",
            "em.seconds_per_iter",
            "em_parallel.speedup_vs_serial",
            "em_warm_start.iterations_saved",
            "parallel.sharded_ingest_pps",
            "parallel.speedup_vs_serial",
            "parallel.speedup_vs_packet_loop",
            "parallel.codec_bytes_per_flow",
            "service.ingest_pps",
            "obsplane.scrape_seconds_per_snapshot",
            "obsplane.render_seconds",
            "obsplane.audit_seconds_per_epoch",
        }
        assert flat["em.seconds_per_iter"] == pytest.approx(0.05 / 5)

    def test_empty_record_flattens_empty(self):
        assert flatten_metrics({}) == {}

    def test_paper_section_flattens_when_present(self):
        flat = flatten_metrics(make_record(paper=dict()))
        assert "parallel_paper.sharded_ingest_pps" in flat
        assert "parallel_paper.speedup_vs_serial" in flat
        assert "parallel_paper.sharded_ingest_pps" not in \
            flatten_metrics(make_record())

    def test_fallback_fraction_flattens_when_present(self):
        flat = flatten_metrics(make_record(sketches=("cu",),
                                           fallback=0.02))
        assert flat["cu.batch_fallback_fraction"] == pytest.approx(0.02)
        # Sketches without the field (additive paths) stay absent.
        assert "cu.batch_fallback_fraction" not in flatten_metrics(
            make_record(sketches=("cu",)))


class TestToleranceFor:
    def test_exact_name_wins_over_suffix(self):
        tolerances = {"fcm.ingest_pps": 0.1, "ingest_pps": 0.6}
        assert tolerance_for("fcm.ingest_pps", tolerances) == 0.1
        assert tolerance_for("cm.ingest_pps", tolerances) == 0.6

    def test_unknown_metric_defaults_to_half(self):
        assert tolerance_for("new.metric", {}) == 0.5

    def test_defaults_cover_every_gated_suffix(self):
        flat = flatten_metrics(make_record())
        for metric in flat:
            suffix = metric.rsplit(".", 1)[-1]
            assert suffix in DEFAULT_TOLERANCES, metric


class TestCompareRecords:
    def test_identical_records_have_no_regressions(self):
        record = make_record()
        result = compare_records(record, record, DEFAULT_TOLERANCES)
        assert result["regressions"] == []
        assert all(row[-1] == "ok" for row in result["rows"])

    def test_throughput_drop_beyond_tolerance_regresses(self):
        base = make_record(ingest_pps=1e6)
        fresh = make_record(ingest_pps=1e6 * 0.3)  # -70% vs 60% tol
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        assert any("fcm.ingest_pps" in r and "fell" in r
                   for r in result["regressions"])

    def test_throughput_gain_never_regresses(self):
        base = make_record(ingest_pps=1e6)
        fresh = make_record(ingest_pps=1e9)
        assert compare_records(base, fresh,
                               DEFAULT_TOLERANCES)["regressions"] == []

    def test_overhead_rise_beyond_tolerance_regresses(self):
        base = make_record(enabled_over_disabled=1.0)
        fresh = make_record(enabled_over_disabled=2.0)  # +100% vs 60%
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        assert any("enabled_over_disabled" in r and "rose" in r
                   for r in result["regressions"])

    def test_overhead_drop_never_regresses(self):
        base = make_record(enabled_over_disabled=1.5)
        fresh = make_record(enabled_over_disabled=0.9)
        assert compare_records(base, fresh,
                               DEFAULT_TOLERANCES)["regressions"] == []

    def test_em_skipped_when_packet_budgets_differ(self):
        base = make_record(packets=100_000, em_runtime=0.01)
        fresh = make_record(packets=2_000, em_runtime=100.0)
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        (em_row,) = [row for row in result["rows"]
                     if row[0] == "em.seconds_per_iter"]
        assert em_row[-1].startswith("skipped")
        assert result["regressions"] == []

    def test_fallback_rise_beyond_tolerance_regresses(self):
        base = make_record(sketches=("cu",), fallback=0.10)
        fresh = make_record(sketches=("cu",), fallback=0.50)
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        assert any("cu.batch_fallback_fraction" in r and "rose" in r
                   for r in result["regressions"])

    def test_fallback_drop_never_regresses(self):
        base = make_record(sketches=("cu",), fallback=0.50)
        fresh = make_record(sketches=("cu",), fallback=0.0)
        assert compare_records(base, fresh,
                               DEFAULT_TOLERANCES)["regressions"] == []

    def test_zero_fallback_baseline_gates_absolutely(self):
        """A 0.0 baseline makes the multiplicative bound vacuous; the
        tolerance then acts as an absolute ceiling on the fraction."""
        base = make_record(sketches=("cu",), fallback=0.0)
        within = make_record(sketches=("cu",), fallback=0.05)
        beyond = make_record(sketches=("cu",), fallback=0.25)
        tol = DEFAULT_TOLERANCES["batch_fallback_fraction"]
        assert 0.05 <= tol < 0.25
        assert compare_records(base, within,
                               DEFAULT_TOLERANCES)["regressions"] == []
        result = compare_records(base, beyond, DEFAULT_TOLERANCES)
        assert any("cu.batch_fallback_fraction" in r
                   for r in result["regressions"])

    def test_obsplane_cost_rise_beyond_tolerance_regresses(self):
        base = make_record()
        fresh = make_record()
        # scrape cost x3 vs the 1.0 (=+100%) default tolerance
        fresh["obsplane"]["scrape_seconds_per_snapshot"] *= 3.0
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        assert any("obsplane.scrape_seconds_per_snapshot" in r
                   and "rose" in r for r in result["regressions"])

    def test_obsplane_cost_drop_never_regresses(self):
        base = make_record()
        fresh = make_record()
        for field in ("scrape_seconds_per_snapshot", "render_seconds",
                      "audit_seconds_per_epoch"):
            fresh["obsplane"][field] *= 0.25
        assert compare_records(base, fresh,
                               DEFAULT_TOLERANCES)["regressions"] == []

    def test_one_sided_metrics_report_but_never_gate(self):
        base = make_record(sketches=("fcm",))
        fresh = make_record(sketches=("fcm", "newcomer"),
                            ingest_pps=1.0)  # newcomer is terrible
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        verdicts = {row[0]: row[-1] for row in result["rows"]}
        assert verdicts["newcomer.ingest_pps"] == "uncompared"
        assert not any("newcomer" in r for r in result["regressions"])

    def test_speedup_skipped_when_either_gate_skipped(self):
        """A 1-core run's speedup is noise, not a bar to hold: the
        relative speedup comparison must carry an explicit skipped
        verdict — never a silent pass, never a false regression."""
        base = make_record(gate=GATE_SKIPPED)  # e.g. a 1-cpu dev box
        fresh = make_record()
        fresh["parallel"]["speedup_vs_serial"] = 0.01
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        (row,) = [r for r in result["rows"]
                  if r[0] == "parallel.speedup_vs_serial"]
        assert row[-1].startswith("skipped (cpus <")
        assert "baseline" in row[-1]
        assert result["regressions"] == []

    def test_speedup_compared_when_both_gates_ok(self):
        base = make_record()
        fresh = make_record()
        fresh["parallel"]["speedup_vs_serial"] = 0.01  # -99.5% vs 60%
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        assert any("parallel.speedup_vs_serial" in r and "fell" in r
                   for r in result["regressions"])

    def test_paper_floor_binds_on_multicore_fresh_run(self):
        """The paper-scale acceptance bound is absolute: a fresh run
        whose pool lost to serial regresses even when the committed
        baseline was generated on a 1-core box (gate skipped)."""
        base = make_record(paper=dict(gate=GATE_SKIPPED,
                                      speedup_vs_serial=0.9, cpus=1))
        fresh = make_record(paper=dict(gate=GATE_OK,
                                       speedup_vs_serial=0.9))
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        assert any("parallel_paper.speedup_vs_serial" in r
                   and "lost to serial" in r
                   for r in result["regressions"])

    def test_paper_floor_skipped_on_single_core_fresh_run(self):
        base = make_record(paper=dict())
        fresh = make_record(paper=dict(gate=GATE_SKIPPED,
                                       speedup_vs_serial=0.9, cpus=1))
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        assert not any("lost to serial" in r
                       for r in result["regressions"])

    def test_em_speedup_skipped_when_either_gate_skipped(self):
        """Same marker pattern as the ingest pool: a 1-core run's EM
        speedup is noise, and the skip is explicit, never silent."""
        base = make_record(em_parallel=dict(gate=GATE_SKIPPED, cpus=1,
                                            speedup_vs_serial=0.5))
        fresh = make_record(em_parallel=dict(speedup_vs_serial=0.01))
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        (row,) = [r for r in result["rows"]
                  if r[0] == "em_parallel.speedup_vs_serial"]
        assert row[-1].startswith("skipped (cpus <")
        # But the absolute floor still binds on the multi-core fresh
        # run regardless of the 1-core baseline.
        assert any("em_parallel.speedup_vs_serial" in r
                   and "lost to" in r for r in result["regressions"])

    def test_em_floor_binds_on_multicore_fresh_run(self):
        base = make_record(em_parallel=dict(gate=GATE_SKIPPED, cpus=1,
                                            speedup_vs_serial=0.5))
        fresh = make_record(em_parallel=dict(gate=GATE_OK,
                                             speedup_vs_serial=0.9))
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        assert any("em_parallel.speedup_vs_serial" in r
                   and "lost to the inline response step" in r
                   for r in result["regressions"])

    def test_em_floor_skipped_on_single_core_fresh_run(self):
        base = make_record()
        fresh = make_record(em_parallel=dict(gate=GATE_SKIPPED, cpus=1,
                                             speedup_vs_serial=0.5))
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        assert not any("inline response step" in r
                       for r in result["regressions"])

    def test_warm_start_savings_drop_beyond_tolerance_regresses(self):
        base = make_record(em_warm_start=dict(iterations_saved=6))
        fresh = make_record(em_warm_start=dict(iterations_saved=1,
                                               warm_iterations=9))
        result = compare_records(base, fresh, DEFAULT_TOLERANCES)
        assert any("em_warm_start.iterations_saved" in r and "fell" in r
                   for r in result["regressions"])

    def test_warm_start_savings_rise_never_regresses(self):
        base = make_record(em_warm_start=dict(iterations_saved=2))
        fresh = make_record(em_warm_start=dict(iterations_saved=8,
                                               warm_iterations=2))
        assert compare_records(base, fresh,
                               DEFAULT_TOLERANCES)["regressions"] == []


class TestTrajectory:
    def test_entry_carries_metrics_and_regressions(self):
        base, fresh = make_record(), make_record(ingest_pps=1.0)
        comparison = compare_records(base, fresh, DEFAULT_TOLERANCES)
        entry = trajectory_entry(base, fresh, comparison)
        assert entry["packets"] == fresh["packets"]
        assert entry["baseline_packets"] == base["packets"]
        assert entry["metrics"] == flatten_metrics(fresh)
        assert entry["regressions"] == comparison["regressions"]
        assert "T" in entry["timestamp"]

    def test_append_grows_history_file(self, tmp_path):
        path = str(tmp_path / "traj.json")
        assert append_trajectory(path, {"n": 1}) == 1
        assert append_trajectory(path, {"n": 2}) == 2
        history = json.loads((tmp_path / "traj.json").read_text())
        assert [e["n"] for e in history] == [1, 2]

    def test_append_refuses_non_list_file(self, tmp_path):
        path = tmp_path / "traj.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ValueError):
            append_trajectory(str(path), {"n": 1})


class TestLoadTolerances:
    def test_none_returns_defaults(self):
        assert load_tolerances(None) == DEFAULT_TOLERANCES

    def test_overrides_merge_and_comments_skip(self, tmp_path):
        path = tmp_path / "tol.json"
        path.write_text(json.dumps({"__comment": "noise",
                                    "ingest_pps": 0.9,
                                    "custom.metric": 0.01}))
        tolerances = load_tolerances(str(path))
        assert tolerances["ingest_pps"] == 0.9
        assert tolerances["custom.metric"] == 0.01
        assert tolerances["query_kps"] == DEFAULT_TOLERANCES["query_kps"]
        assert "__comment" not in tolerances

    def test_non_object_file_raises(self, tmp_path):
        path = tmp_path / "tol.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_tolerances(str(path))


class TestSyntheticRecordIsValid:
    def test_make_record_passes_schema(self):
        assert validate_record(make_record()) == []
        assert validate_record(make_record(paper=dict())) == []

    def test_missing_gate_marker_is_invalid(self):
        record = make_record()
        del record["parallel"]["gate"]
        assert any("parallel.gate" in e
                   for e in validate_record(record))

    def test_paper_speedup_floor_validates_by_own_gate(self):
        losing = dict(speedup_vs_serial=0.9)
        errors = validate_record(make_record(paper=losing))
        assert any("speedup_vs_serial" in e and "multi-core" in e
                   for e in errors)
        skipped = dict(speedup_vs_serial=0.9, gate=GATE_SKIPPED,
                       cpus=1)
        assert validate_record(make_record(paper=skipped)) == []

    def test_em_parallel_divergence_is_invalid(self):
        """Bit-exactness is a hard invariant, not a tolerance."""
        errors = validate_record(
            make_record(em_parallel=dict(identical=False)))
        assert any("em_parallel.identical" in e for e in errors)

    def test_em_parallel_missing_gate_is_invalid(self):
        record = make_record()
        del record["em_parallel"]["gate"]
        assert any("em_parallel.gate" in e
                   for e in validate_record(record))

    def test_warm_start_zero_savings_is_invalid(self):
        errors = validate_record(
            make_record(em_warm_start=dict(iterations_saved=0,
                                           warm_iterations=10)))
        assert any("iterations_saved" in e for e in errors)
        errors = validate_record(
            make_record(em_warm_start=dict(warm_converged=False)))
        assert any("warm_converged" in e for e in errors)

    def test_fallback_fraction_validates_range(self):
        assert validate_record(make_record(fallback=0.0)) == []
        assert validate_record(make_record(fallback=1.0)) == []
        errors = validate_record(make_record(fallback=1.5))
        assert any("batch_fallback_fraction" in e for e in errors)
        errors = validate_record(make_record(fallback=-0.1))
        assert any("batch_fallback_fraction" in e for e in errors)


# ----------------------------------------------------------------------
# end-to-end: main(["--compare", ...]) at a tiny packet budget
# ----------------------------------------------------------------------

def _loose_tolerances(tmp_path):
    path = tmp_path / "tol.json"
    path.write_text(json.dumps({suffix: 1e9
                                for suffix in DEFAULT_TOLERANCES}))
    return str(path)


def test_main_compare_passes_and_appends_trajectory(tmp_path, capsys):
    base_path = tmp_path / "base.json"
    traj_path = tmp_path / "traj.json"
    # Absurdly slow baseline + unbounded tolerances: any machine passes.
    base_path.write_text(json.dumps(make_record(
        packets=2_000, ingest_pps=1.0, query_kps=1.0, em_runtime=1e6)))
    rc = main(["--compare", "--repeats", "1",
               "--out", str(base_path),
               "--trajectory", str(traj_path),
               "--tolerances", _loose_tolerances(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "no regressions beyond tolerance" in out
    assert "baseline: 2000 packets" in out  # budget came from baseline
    history = json.loads(traj_path.read_text())
    assert len(history) == 1
    assert history[0]["regressions"] == []


def test_main_compare_exits_2_on_regression(tmp_path, capsys):
    base_path = tmp_path / "base.json"
    traj_path = tmp_path / "traj.json"
    # A baseline no machine can meet: fresh fcm throughput regresses.
    record = make_record(packets=2_000, ingest_pps=1e15, query_kps=1e15,
                         em_runtime=1e6)
    base_path.write_text(json.dumps(record))
    rc = main(["--compare", "--repeats", "1",
               "--out", str(base_path),
               "--trajectory", str(traj_path)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "REGRESSION" in err and "fcm.ingest_pps" in err
    # The trajectory records the failed run too.
    history = json.loads(traj_path.read_text())
    assert history[0]["regressions"]


def test_main_compare_rejects_invalid_baseline(tmp_path, capsys):
    base_path = tmp_path / "base.json"
    base_path.write_text(json.dumps({"schema_version": 999}))
    rc = main(["--compare", "--out", str(base_path),
               "--trajectory", str(tmp_path / "traj.json")])
    assert rc == 1
    assert "INVALID baseline" in capsys.readouterr().err
