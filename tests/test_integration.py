"""Cross-module integration tests: full paper pipelines end to end."""

import numpy as np
import pytest

from repro import FCMSketch, FCMTopK, caida_like_trace, zipf_trace
from repro.analysis import fcm_error_bound
from repro.controlplane import SketchCollector
from repro.controlplane.distribution import estimate_distribution
from repro.core.em import EMConfig
from repro.core.virtual import convert_sketch
from repro.dataplane import FCMPipeline, TcamCardinalityTable
from repro.metrics import (
    average_relative_error,
    f1_score,
    relative_error,
    weighted_mean_relative_error,
)
from repro.sketches import CountMinSketch, ElasticSketch, MRAC


class TestFullMeasurementPipeline:
    """One trace, one sketch, every measurement the paper supports."""

    @pytest.fixture(scope="class")
    def setup(self):
        trace = caida_like_trace(num_packets=100_000, seed=51)
        sketch = FCMSketch.with_memory(32 * 1024, seed=6)
        sketch.ingest(trace.keys)
        return trace, sketch

    def test_flow_size(self, setup):
        trace, sketch = setup
        gt = trace.ground_truth
        are = average_relative_error(
            gt.sizes_array(), sketch.query_many(gt.keys_array())
        )
        assert are < 1.0

    def test_heavy_hitters(self, setup):
        trace, sketch = setup
        threshold = trace.heavy_hitter_threshold()
        truth = trace.ground_truth.heavy_hitters(threshold)
        reported = sketch.heavy_hitters(
            trace.ground_truth.keys_array(), threshold
        )
        assert f1_score(reported, truth) > 0.95

    def test_cardinality(self, setup):
        trace, sketch = setup
        assert relative_error(trace.ground_truth.cardinality,
                              sketch.cardinality()) < 0.05

    def test_distribution_and_entropy(self, setup):
        trace, sketch = setup
        result = estimate_distribution(sketch, iterations=5)
        truth = trace.ground_truth
        wmre = weighted_mean_relative_error(
            truth.size_distribution_array(), result.size_counts
        )
        assert wmre < 0.5
        assert relative_error(truth.entropy, result.entropy) < 0.05

    def test_error_bound_holds(self, setup):
        trace, sketch = setup
        gt = trace.ground_truth
        errors = sketch.query_many(gt.keys_array()) - gt.sizes_array()
        max_degree = max(a.max_degree for a in convert_sketch(sketch))
        bound = fcm_error_bound(len(trace), sketch.config.leaf_width,
                                sketch.config.counting_ranges[0],
                                max_degree)
        assert float(np.mean(errors > bound)) < 0.15


class TestPaperHeadlineClaims:
    """The abstract's quantitative claims, at reproduction scale."""

    @pytest.fixture(scope="class")
    def workload(self):
        return caida_like_trace(num_packets=150_000, seed=52)

    def test_fcm_reduces_cm_error_by_half_or_more(self, workload):
        """Abstract: '50% to 80% [error reduction] compared to
        CM-Sketch and other state-of-the-art approaches' (we see ~85%+
        for plain CM, matching §7.3's 88%)."""
        gt = workload.ground_truth
        budget = 24 * 1024
        cm = CountMinSketch(budget, seed=2)
        fcm = FCMSketch.with_memory(budget, k=16, seed=2)
        cm.ingest(workload.keys)
        fcm.ingest(workload.keys)
        cm_are = average_relative_error(
            gt.sizes_array(), cm.query_many(gt.keys_array())
        )
        fcm_are = average_relative_error(
            gt.sizes_array(), fcm.query_many(gt.keys_array())
        )
        assert fcm_are < 0.5 * cm_are

    def test_fcm_topk_beats_elastic(self, workload):
        """§7.5: FCM+TopK's flow-size errors below ElasticSketch at
        the same memory."""
        gt = workload.ground_truth
        budget = 48 * 1024
        elastic = ElasticSketch(budget, seed=2)
        topk = FCMTopK(budget, k=16, seed=2)
        elastic.ingest(workload.keys)
        topk.ingest(workload.keys)
        elastic_are = average_relative_error(
            gt.sizes_array(), elastic.query_many(gt.keys_array())
        )
        topk_are = average_relative_error(
            gt.sizes_array(), topk.query_many(gt.keys_array())
        )
        assert topk_are < elastic_are

    def test_fcm_em_beats_mrac(self, workload):
        """§7.3: lower WMRE than MRAC at the same memory (k >= 4)."""
        budget = 32 * 1024
        truth = workload.ground_truth.size_distribution_array()
        mrac = MRAC(budget, seed=2)
        mrac.ingest(workload.keys)
        mrac_wmre = weighted_mean_relative_error(
            truth,
            mrac.estimate_distribution(iterations=5).size_counts,
        )
        fcm = FCMSketch.with_memory(budget, k=8, seed=2)
        fcm.ingest(workload.keys)
        fcm_wmre = weighted_mean_relative_error(
            truth,
            estimate_distribution(fcm, iterations=5).size_counts,
        )
        assert fcm_wmre < mrac_wmre


class TestHardwareSoftwareEquivalence:
    def test_pipeline_registers_equal_core(self):
        trace = zipf_trace(20_000, 1.3, seed=3)
        config = FCMSketch.with_memory(8 * 1024, seed=1).config
        pipeline = FCMPipeline(config)
        sketch = FCMSketch(config)
        for key in trace.keys:
            pipeline.process_packet(int(key))
        sketch.ingest(trace.keys)
        for index, tree in enumerate(sketch.trees):
            for hw, sw in zip(pipeline.register_values(index),
                              tree.stage_values):
                assert np.array_equal(hw, sw)

    def test_tcam_lookup_matches_dataplane_cardinality(self):
        trace = caida_like_trace(num_packets=50_000, seed=53)
        sketch = FCMSketch.with_memory(64 * 1024, seed=4)
        sketch.ingest(trace.keys)
        table = TcamCardinalityTable(sketch.config.leaf_width,
                                     error_bound=0.002)
        empties = int(np.mean([t.empty_leaves for t in sketch.trees]))
        assert table.lookup(empties) == pytest.approx(
            sketch.cardinality(), rel=0.01
        )


class TestWindowedOperation:
    def test_collector_with_em_and_changes(self):
        trace = caida_like_trace(num_packets=80_000, seed=54)
        collector = SketchCollector(
            sketch_factory=lambda: FCMTopK(48 * 1024, seed=2),
            em_config=EMConfig(max_iterations=3),
            run_em=True,
            change_threshold=5_000,
        )
        reports = collector.process(trace, num_windows=2)
        assert len(reports) == 2
        for report in reports:
            assert report.distribution is not None
            assert report.cardinality_estimate > 0
