"""Tests for the single FCM tree, including the paper's Figure 4
worked example (binary tree, 2/4/8-bit stages)."""

import numpy as np
import pytest

from repro.core.config import FCMConfig
from repro.core.tree import FCMTree
from repro.hashing import HashFamily


def paper_tree() -> FCMTree:
    """The Figure 4 tree: binary, 3 stages, 2/4/8-bit, 4 leaves."""
    cfg = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                    stage_widths=(4, 2, 1))
    return FCMTree(cfg, HashFamily(0))


def load_figure4_initial_state(tree: FCMTree) -> None:
    """Reproduce the Figure 4b state via per-leaf totals.

    Target node values: stage 1 = [3, 0, 2, 3] (sentinel is 3), stage 2
    = [15, 4] (sentinel is 15), stage 3 = [9].  Working backwards:
    C2,0 absorbed 14 and carried 9, so its children carried 23 — all
    from leaf 0, whose total is 2 + 23 = 25.  C2,1 holds 4, carried
    entirely by leaf 3 (total 2 + 4 = 6).  Leaf 2 holds exactly its
    counting range (2, not overflowed); leaf 1 is empty.
    """
    tree.ingest_totals(np.array([25, 0, 2, 6]))


class TestFigure4Example:
    def test_initial_state_matches_paper(self):
        tree = paper_tree()
        load_figure4_initial_state(tree)
        values = tree.stage_values
        assert values[0].tolist() == [3, 0, 2, 3]
        # C2,0 overflowed -> sentinel 15; C2,1 holds 4.
        assert values[1].tolist() == [15, 4]
        assert values[2].tolist() == [9]

    def test_count_queries_match_paper(self):
        tree = paper_tree()
        load_figure4_initial_state(tree)
        # f2 hashes to leaf 0: overflow at stage 1 (2) + overflow at
        # stage 2 (14) + stage 3 value 9 = 25.
        assert tree.query_leaf(0) == 25
        # f1 hashes to leaf 2: value 2, no overflow -> 2.
        assert tree.query_leaf(2) == 2
        # leaf 3: overflow (2) + stage-2 value 4 -> 6.
        assert tree.query_leaf(3) == 6
        # leaf 1: empty.
        assert tree.query_leaf(1) == 0


class TestUpdateSemantics:
    def test_single_update_visible(self):
        tree = paper_tree()
        tree.update(123)
        assert tree.query(123) == 1

    def test_update_with_count(self):
        tree = paper_tree()
        tree.update(7, count=2)
        assert tree.query(7) == 2

    def test_update_rejects_negative(self):
        with pytest.raises(ValueError):
            paper_tree().update(1, count=-1)

    def test_overflow_carries_to_parent(self):
        """Figure 4a's update: a leaf at its counting range overflows
        and the increment lands in the parent."""
        tree = paper_tree()
        leaf = tree.leaf_index(42)
        tree.update(42, count=2)  # leaf at theta_1 = 2, no overflow
        assert tree.stage_values[0][leaf] == 2
        tree.update(42)  # 3rd increment: sentinel + carry
        values = tree.stage_values
        assert values[0][leaf] == 3  # sentinel
        assert values[1][leaf // 2] == 1
        assert tree.query(42) == 3

    def test_deep_overflow_chain(self):
        tree = paper_tree()
        # theta = [2, 14, 254]: 100 increments -> 2 + 14 + 84.
        tree.update(9, count=100)
        leaf = tree.leaf_index(9)
        values = tree.stage_values
        assert values[0][leaf] == 3
        assert values[1][leaf // 2] == 15
        assert values[2][0] == 84
        assert tree.query(9) == 100

    def test_last_stage_saturates(self):
        tree = paper_tree()
        # capacity: 2 + 14 + 255 = 271 maximum representable.
        tree.update(1, count=500)
        assert tree.query(1) == 2 + 14 + 255

    def test_exact_below_first_overflow(self):
        tree = paper_tree()
        key = 77
        for i in range(1, 3):
            tree.update(key)
            assert tree.query(key) == i


class TestBulkEquivalence:
    def test_ingest_equals_scalar_updates(self):
        cfg = FCMConfig(num_trees=1, k=4, stage_bits=(4, 8, 16),
                        stage_widths=(64, 16, 4))
        scalar = FCMTree(cfg, HashFamily(5))
        bulk = FCMTree(cfg, HashFamily(5))
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 200, size=5000, dtype=np.uint64)
        for k in keys:
            scalar.update(int(k))
        bulk.ingest(keys)
        for a, b in zip(scalar.stage_values, bulk.stage_values):
            assert np.array_equal(a, b)

    def test_query_many_matches_scalar(self):
        cfg = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                        stage_widths=(32, 16, 8))
        tree = FCMTree(cfg, HashFamily(1))
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 100, size=4000, dtype=np.uint64)
        tree.ingest(keys)
        uniq = np.unique(keys)
        vec = tree.query_many(uniq)
        for i, k in enumerate(uniq):
            assert vec[i] == tree.query(int(k))

    def test_incremental_ingest_equals_one_shot(self):
        cfg = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                        stage_widths=(16, 8, 4))
        once = FCMTree(cfg, HashFamily(2))
        twice = FCMTree(cfg, HashFamily(2))
        keys = np.arange(1000, dtype=np.uint64) % 37
        once.ingest(keys)
        twice.ingest(keys[:400])
        twice.ingest(keys[400:])
        for a, b in zip(once.stage_values, twice.stage_values):
            assert np.array_equal(a, b)


class TestOccupancy:
    def test_empty_leaves(self):
        tree = paper_tree()
        assert tree.empty_leaves == 4
        tree.update(3)
        assert tree.empty_leaves == 3

    def test_total_increments(self):
        tree = paper_tree()
        tree.update(1, count=5)
        tree.update(2, count=7)
        assert tree.total_increments == 12

    def test_leaf_totals_read_only(self):
        tree = paper_tree()
        with pytest.raises(ValueError):
            tree.leaf_totals[0] = 1

    def test_ingest_totals_validation(self):
        tree = paper_tree()
        with pytest.raises(ValueError):
            tree.ingest_totals(np.array([1, 2]))
        with pytest.raises(ValueError):
            tree.ingest_totals(np.array([-1, 0, 0, 0]))

    def test_query_leaf_bounds(self):
        with pytest.raises(IndexError):
            paper_tree().query_leaf(99)
