"""Additional framework and collector behaviour tests."""

import numpy as np
import pytest

from repro.core.em import EMConfig
from repro.framework import FCMFramework, MeasurementReport
from repro.traffic import caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return caida_like_trace(num_packets=40_000, seed=131)


class TestFrameworkConfiguration:
    def test_default_k_plain_vs_topk(self):
        plain = FCMFramework(memory_bytes=32 * 1024)
        topk = FCMFramework(memory_bytes=32 * 1024, use_topk=True)
        assert plain.sketch.config.k == 8
        assert topk.sketch.fcm.config.k == 16

    def test_explicit_k_override(self):
        fw = FCMFramework(memory_bytes=32 * 1024, k=4)
        assert fw.sketch.config.k == 4

    def test_custom_em_config_used(self, trace):
        fw = FCMFramework(memory_bytes=32 * 1024,
                          em_config=EMConfig(max_iterations=2))
        fw.process_trace(trace)
        result = fw.flow_size_distribution()
        assert result.iterations == 2

    def test_incremental_processing(self, trace):
        fw = FCMFramework(memory_bytes=32 * 1024, seed=1)
        half = len(trace) // 2
        fw.process_packets(trace.keys[:half])
        fw.process_packets(trace.keys[half:])
        one_shot = FCMFramework(memory_bytes=32 * 1024, seed=1)
        one_shot.process_trace(trace)
        gt = trace.ground_truth
        keys = gt.keys_array()[:100]
        for key in keys:
            assert fw.flow_size(int(key)) == one_shot.flow_size(int(key))


class TestReport:
    def test_report_without_em(self, trace):
        fw = FCMFramework(memory_bytes=32 * 1024)
        fw.process_trace(trace)
        report = fw.report(trace.ground_truth.keys_array(),
                           heavy_hitter_threshold=50, run_em=False)
        assert isinstance(report, MeasurementReport)
        assert report.distribution is None
        assert report.entropy is None
        assert report.total_packets == len(trace)

    def test_report_with_em(self, trace):
        fw = FCMFramework(memory_bytes=32 * 1024,
                          em_config=EMConfig(max_iterations=2))
        fw.process_trace(trace)
        report = fw.report(trace.ground_truth.keys_array(),
                           heavy_hitter_threshold=50)
        assert report.distribution is not None
        assert report.entropy == pytest.approx(
            trace.ground_truth.entropy, rel=0.2
        )

    def test_topk_framework_report(self, trace):
        fw = FCMFramework(memory_bytes=48 * 1024, use_topk=True,
                          em_config=EMConfig(max_iterations=2))
        fw.process_trace(trace)
        report = fw.report(trace.ground_truth.keys_array(),
                           heavy_hitter_threshold=50)
        truth = trace.ground_truth.heavy_hitters(50)
        assert truth <= report.heavy_hitters
