"""Tests for the conservative-update FCM extension (FCU)."""

import numpy as np
import pytest

from repro.core import FCMSketch
from repro.core.fcu import CUFCMSketch
from repro.metrics import average_relative_error
from repro.traffic import caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return caida_like_trace(num_packets=40_000, seed=61)


class TestFCUSemantics:
    def test_single_flow_exact(self):
        sketch = CUFCMSketch(16 * 1024)
        sketch.update(5, count=20)
        assert sketch.query(5) == 20

    def test_never_underestimates(self, trace):
        sketch = CUFCMSketch(12 * 1024, seed=2)
        sketch.ingest(trace.keys)
        gt = trace.ground_truth
        est = sketch.query_many(gt.keys_array())
        assert np.all(est >= gt.sizes_array())

    def test_never_worse_than_plain_fcm(self, trace):
        """CU can only skip increments, so every per-flow estimate is
        at most the plain FCM estimate (same hashes)."""
        plain = FCMSketch.with_memory(12 * 1024, seed=2)
        conservative = CUFCMSketch(12 * 1024, seed=2)
        plain.ingest(trace.keys)
        conservative.ingest(trace.keys)
        keys = trace.ground_truth.keys_array()
        assert np.all(conservative.query_many(keys)
                      <= plain.query_many(keys))

    def test_strictly_better_on_average(self, trace):
        plain = FCMSketch.with_memory(8 * 1024, seed=2)
        conservative = CUFCMSketch(8 * 1024, seed=2)
        plain.ingest(trace.keys)
        conservative.ingest(trace.keys)
        gt = trace.ground_truth
        plain_are = average_relative_error(
            gt.sizes_array(), plain.query_many(gt.keys_array())
        )
        cu_are = average_relative_error(
            gt.sizes_array(), conservative.query_many(gt.keys_array())
        )
        assert cu_are <= plain_are

    def test_overflow_chain(self):
        sketch = CUFCMSketch(16 * 1024, stage_bits=(4, 8, 16))
        sketch.update(9, count=300)
        assert sketch.query(9) == 300

    def test_update_rejects_negative(self):
        with pytest.raises(ValueError):
            CUFCMSketch(8 * 1024).update(1, count=-1)

    def test_memory_accounting(self):
        sketch = CUFCMSketch(32 * 1024)
        assert 0 < sketch.memory_bytes <= 32 * 1024
