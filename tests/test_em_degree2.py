"""EM behaviour with enumerable degree-2 counters.

With the paper's 8-bit leaves, any degree >= 2 virtual counter exceeds
2 * 255 and lands in the deterministic tier; these tests use small
leaf counters (2-4 bits) so merged counters fall *inside* the
enumeration thresholds and the degree-aware posterior actually runs.
"""

import numpy as np
import pytest

from repro.core import FCMConfig
from repro.core.em import EMConfig, EMEstimator
from repro.core.tree import FCMTree
from repro.core.virtual import VirtualCounterArray
from repro.hashing import HashFamily
from repro.robustness import EMGuardConfig, guarded_em_run
from repro.telemetry import MemoryExporter, MetricsRegistry
from repro.telemetry.tracing import read_spans


def small_tree(widths=(16, 8, 4)) -> FCMTree:
    cfg = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                    stage_widths=widths)
    return FCMTree(cfg, HashFamily(3))


def force_degree2_state() -> VirtualCounterArray:
    """Two sibling leaves overflow and merge at stage 2."""
    tree = small_tree(widths=(4, 2, 1))
    # Leaves 0 and 1: totals 4 and 5 -> both overflow (theta1 = 2),
    # stage-2 node 0 receives 2 + 3 = 5 < 14 -> merge of degree 2 with
    # value 2 + 2 + 5 = 9 (the paper's example!).
    tree.ingest_totals(np.array([4, 5, 0, 0]))
    return VirtualCounterArray.from_tree(tree)


class TestDegree2Array:
    def test_structure(self):
        array = force_degree2_state()
        assert len(array) == 1
        counter = next(iter(array))
        assert counter.value == 9
        assert counter.degree == 2
        assert counter.stage == 2


class TestDegree2EM:
    def test_em_respects_min_path(self):
        """For the V=9/degree-2 counter with theta1=2, all posterior
        mass must sit on combinations whose leaves can overflow: no
        estimated flows of size < 3 unless paired within a leaf."""
        array = force_degree2_state()
        result = EMEstimator([array], EMConfig(max_extra_flows=1)).run(
            iterations=6
        )
        # With at most 3 flows the feasible combinations are {3,6},
        # {4,5} and three-flow sets whose small members pair up inside
        # one leaf (e.g. {1,2,6}); either way the posterior mass
        # concentrates on sizes 3..6.
        assert result.total_flows == pytest.approx(2.0, abs=0.8)
        mass_feasible = result.size_counts[3:7].sum()
        assert mass_feasible > 0.5 * result.size_counts.sum()

    def test_total_count_preserved_in_expectation(self):
        array = force_degree2_state()
        result = EMEstimator([array]).run(iterations=5)
        expected_total = float(
            np.sum(np.arange(result.size_counts.shape[0])
                   * result.size_counts)
        )
        assert expected_total == pytest.approx(9.0, rel=0.01)

    def test_mixed_degrees(self):
        """Degree-1 and degree-2 counters in one array."""
        tree = small_tree(widths=(4, 2, 1))
        tree.ingest_totals(np.array([4, 5, 2, 0]))
        array = VirtualCounterArray.from_tree(tree)
        degrees = sorted(array.degrees.tolist())
        assert degrees == [1, 2]
        result = EMEstimator([array]).run(iterations=5)
        assert result.total_flows == pytest.approx(3.0, abs=1.0)

    def test_guarded_run_on_degree2_counters_counts_fallbacks(self):
        """Degree-2 enumeration under the divergence guard: a clean
        run counts no fallback; a zero-width corridor serves the
        fallback histogram and records counter + event + spans."""
        array = force_degree2_state()
        exporter = MemoryExporter()
        telemetry = MetricsRegistry(exporter=exporter)

        clean = guarded_em_run(
            EMEstimator([array], telemetry=telemetry), iterations=3)
        assert not clean.fell_back
        assert telemetry.counter("em.guard_fallbacks").value == 0

        tripped = guarded_em_run(
            EMEstimator([array], telemetry=telemetry),
            guard=EMGuardConfig(divergence_factor=1.0))
        assert tripped.fell_back
        assert telemetry.counter("em.guard_fallbacks").value == 1
        events = [e for e in exporter.events if e.name == "em.fallback"]
        assert len(events) == 1 and events[0].kind == "em"
        assert {"em.run", "em.iteration"} <= {
            s["name"] for s in read_spans(exporter.events)}

    def test_heavier_traffic_many_degrees(self):
        """A loaded small-counter tree produces a degree spectrum and
        EM still conserves the total count."""
        tree = small_tree(widths=(64, 32, 16))
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 120, size=3000, dtype=np.uint64)
        tree.ingest(keys)
        array = VirtualCounterArray.from_tree(tree)
        assert array.max_degree >= 2
        result = EMEstimator([array]).run(iterations=4)
        expected_total = float(
            np.sum(np.arange(result.size_counts.shape[0])
                   * result.size_counts)
        )
        # Count preserved up to last-stage saturation.
        assert expected_total <= 3000 + 1e-6
        assert expected_total >= 0.9 * array.total_value
