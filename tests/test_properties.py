"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FCMConfig, FCMSketch
from repro.core.em import _can_cover, _partitions, enumerate_combinations
from repro.core.tree import FCMTree
from repro.core.virtual import VirtualCounterArray, convert_sketch
from repro.hashing import HashFamily
from repro.metrics import weighted_mean_relative_error
from repro.sketches import CountMinSketch, CUSketch, PyramidCMSketch

key_lists = st.lists(st.integers(min_value=0, max_value=500),
                     min_size=1, max_size=400)


def small_tree(seed: int = 0) -> FCMTree:
    cfg = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                    stage_widths=(16, 8, 4))
    return FCMTree(cfg, HashFamily(seed))


class TestFCMProperties:
    @given(keys=key_lists)
    @settings(max_examples=40, deadline=None)
    def test_never_underestimates(self, keys):
        sketch = FCMSketch(FCMConfig(num_trees=2, k=2,
                                     stage_bits=(2, 4, 8),
                                     stage_widths=(16, 8, 4), seed=1))
        arr = np.asarray(keys, dtype=np.uint64)
        sketch.ingest(arr)
        uniq, counts = np.unique(arr, return_counts=True)
        capacity = sum(sketch.config.counting_ranges[:-1]) \
            + sketch.config.sentinels[-1]
        est = sketch.query_many(uniq)
        assert np.all(est >= np.minimum(counts, capacity))

    @given(keys=key_lists)
    @settings(max_examples=30, deadline=None)
    def test_scalar_bulk_equivalence(self, keys):
        scalar, bulk = small_tree(3), small_tree(3)
        for k in keys:
            scalar.update(k)
        bulk.ingest(np.asarray(keys, dtype=np.uint64))
        for a, b in zip(scalar.stage_values, bulk.stage_values):
            assert np.array_equal(a, b)

    @given(keys=key_lists)
    @settings(max_examples=30, deadline=None)
    def test_conversion_preserves_total(self, keys):
        tree = small_tree(5)
        tree.ingest(np.asarray(keys, dtype=np.uint64))
        array = VirtualCounterArray.from_tree(tree)
        # Total preserved unless the last stage saturated.
        last = tree.stage_values[-1]
        if np.all(last < tree.sentinels[-1]):
            assert array.total_value == len(keys)
        else:
            assert array.total_value <= len(keys)

    @given(keys=key_lists)
    @settings(max_examples=30, deadline=None)
    def test_conversion_covers_leaves(self, keys):
        tree = small_tree(7)
        tree.ingest(np.asarray(keys, dtype=np.uint64))
        array = VirtualCounterArray.from_tree(tree)
        assert (int(array.degrees.sum()) + array.num_empty_leaves
                == tree.leaf_width)

    @given(keys=key_lists, seed=st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_query_many_matches_scalar(self, keys, seed):
        tree = small_tree(seed)
        arr = np.asarray(keys, dtype=np.uint64)
        tree.ingest(arr)
        uniq = np.unique(arr)
        vec = tree.query_many(uniq)
        for i, k in enumerate(uniq):
            assert vec[i] == tree.query(int(k))


class TestBaselineProperties:
    @given(keys=key_lists)
    @settings(max_examples=30, deadline=None)
    def test_cm_never_underestimates(self, keys):
        cm = CountMinSketch(1024, seed=2)
        arr = np.asarray(keys, dtype=np.uint64)
        cm.ingest(arr)
        uniq, counts = np.unique(arr, return_counts=True)
        assert np.all(cm.query_many(uniq) >= counts)

    @given(keys=key_lists)
    @settings(max_examples=25, deadline=None)
    def test_cu_between_truth_and_cm(self, keys):
        cm = CountMinSketch(1024, seed=4)
        cu = CUSketch(1024, seed=4)
        arr = np.asarray(keys, dtype=np.uint64)
        cm.ingest(arr)
        cu.ingest(arr)
        uniq, counts = np.unique(arr, return_counts=True)
        cu_est = cu.query_many(uniq)
        assert np.all(cu_est >= counts)
        assert np.all(cu_est <= cm.query_many(uniq))

    @given(keys=key_lists)
    @settings(max_examples=25, deadline=None)
    def test_pyramid_never_underestimates(self, keys):
        p = PyramidCMSketch(2048, seed=1)
        arr = np.asarray(keys, dtype=np.uint64)
        p.ingest(arr)
        uniq, counts = np.unique(arr, return_counts=True)
        assert np.all(p.query_many(uniq) >= counts)


class TestEnumerationProperties:
    @given(value=st.integers(1, 40), max_parts=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_partitions_sum_and_order(self, value, max_parts):
        for parts in _partitions(value, max_parts):
            assert sum(parts) == value
            assert 1 <= len(parts) <= max_parts
            assert parts == sorted(parts)

    @given(value=st.integers(1, 40), max_parts=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_partitions_unique(self, value, max_parts):
        seen = [tuple(p) for p in _partitions(value, max_parts)]
        assert len(seen) == len(set(seen))

    @given(value=st.integers(1, 30), degree=st.integers(1, 3),
           min_path=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_combinations_respect_constraints(self, value, degree,
                                              min_path):
        combos = enumerate_combinations(value, degree, min_path,
                                        max_flows=degree + 2)
        for sizes, mults in combos:
            flat = tuple(np.repeat(sizes, mults))
            assert sum(flat) == value
            assert len(flat) >= degree
            if degree > 1:
                assert _can_cover(tuple(sorted(flat, reverse=True)),
                                  degree, min_path)

    @given(parts=st.lists(st.integers(1, 10), min_size=1, max_size=6),
           groups=st.integers(1, 3), minimum=st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_can_cover_necessary_conditions(self, parts, groups, minimum):
        feasible = _can_cover(tuple(sorted(parts, reverse=True)),
                              groups, minimum)
        if feasible:
            assert len(parts) >= groups
            assert sum(parts) >= groups * minimum


class TestMetricProperties:
    dists = st.dictionaries(st.integers(1, 30), st.integers(0, 50),
                            max_size=10)

    @given(a=dists, b=dists)
    @settings(max_examples=60, deadline=None)
    def test_wmre_bounds(self, a, b):
        value = weighted_mean_relative_error(a, b)
        assert 0.0 <= value <= 2.0 + 1e-12

    @given(a=dists)
    @settings(max_examples=30, deadline=None)
    def test_wmre_identity(self, a):
        assert weighted_mean_relative_error(a, a) == 0.0

    @given(a=dists, b=dists)
    @settings(max_examples=40, deadline=None)
    def test_wmre_symmetric(self, a, b):
        assert weighted_mean_relative_error(a, b) == \
            weighted_mean_relative_error(b, a)


class TestMergeProperties:
    @given(keys_a=key_lists, keys_b=key_lists)
    @settings(max_examples=25, deadline=None)
    def test_merge_equals_concatenated_ingest(self, keys_a, keys_b):
        cfg = FCMConfig(num_trees=2, k=2, stage_bits=(2, 4, 8),
                        stage_widths=(16, 8, 4), seed=4)
        a, b, combined = FCMSketch(cfg), FCMSketch(cfg), FCMSketch(cfg)
        a.ingest(np.asarray(keys_a, dtype=np.uint64))
        b.ingest(np.asarray(keys_b, dtype=np.uint64))
        combined.ingest(np.asarray(keys_a + keys_b, dtype=np.uint64))
        a.merge(b)
        uniq = np.unique(np.asarray(keys_a + keys_b, dtype=np.uint64))
        assert np.array_equal(a.query_many(uniq),
                              combined.query_many(uniq))

    @given(keys_a=key_lists, keys_b=key_lists)
    @settings(max_examples=20, deadline=None)
    def test_merge_commutes(self, keys_a, keys_b):
        cfg = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                        stage_widths=(16, 8, 4), seed=5)
        ab, ba = FCMSketch(cfg), FCMSketch(cfg)
        parts = []
        for keys in (keys_a, keys_b):
            part = FCMSketch(cfg)
            part.ingest(np.asarray(keys, dtype=np.uint64))
            parts.append(part)
        ab.merge(parts[0])
        ab.merge(parts[1])
        ba.merge(parts[1])
        ba.merge(parts[0])
        uniq = np.unique(np.asarray(keys_a + keys_b, dtype=np.uint64))
        if uniq.size:
            assert np.array_equal(ab.query_many(uniq),
                                  ba.query_many(uniq))


class TestSlidingWindowProperties:
    @given(keys=st.lists(st.integers(0, 60), min_size=1, max_size=600))
    @settings(max_examples=20, deadline=None)
    def test_live_span_never_underestimated(self, keys):
        from repro.controlplane.sliding import JumpingWindowSketch

        window = JumpingWindowSketch(200, num_slots=2,
                                     memory_bytes=8 * 1024, seed=3)
        stream = np.asarray(keys, dtype=np.uint64)
        window.ingest(stream)
        live = stream[len(stream) - window.live_packets:]
        uniq, counts = np.unique(live, return_counts=True)
        assert np.all(window.query_many(uniq) >= counts)


class TestHashProperties:
    @given(key=st.integers(0, 2**64 - 1), width=st.integers(1, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_index_in_range(self, key, width):
        assert 0 <= HashFamily(1).index(key, width) < width

    @given(key=st.integers(0, 2**64 - 1))
    @settings(max_examples=60, deadline=None)
    def test_hash_deterministic(self, key):
        h = HashFamily(9)
        assert h.hash64(key) == h.hash64(key)
