"""Tests for the online accuracy self-monitor (repro.telemetry.health).

Unit tests drive the thresholds directly (a tiny FCM configuration is
easy to saturate); the chaos-marked test runs a leaf-spine fabric with
a seeded fault plan and asserts the monitor flags *exactly* the fault
windows degraded while clean windows stay healthy.
"""

import numpy as np
import pytest

from repro.controlplane import NetworkSketchCollector
from repro.core import FCMConfig, FCMSketch, FCMTopK
from repro.network import NetworkSimulator, leaf_spine
from repro.robustness import FaultInjector, FaultPlan
from repro.robustness.degradation import DegradationLevel
from repro.robustness.policy import CollectionHealth
from repro.telemetry import MemoryExporter, MetricsRegistry
from repro.telemetry.health import (
    HealthStatus,
    HealthThresholds,
    SketchHealthMonitor,
)
from repro.traffic import zipf_trace

# Small enough to drive into saturation with a handful of flows.
TINY = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                 stage_widths=(8, 4, 2), seed=1)


class TestStatusMapping:
    def test_status_maps_onto_degradation_levels(self):
        assert HealthStatus.HEALTHY.degradation is DegradationLevel.FULL
        assert HealthStatus.DEGRADED.degradation is DegradationLevel.DEGRADED
        assert HealthStatus.SATURATED.degradation is DegradationLevel.CRITICAL

    def test_statuses_are_ordered_worst_last(self):
        assert HealthStatus.HEALTHY < HealthStatus.DEGRADED \
            < HealthStatus.SATURATED


class TestAssess:
    def test_clean_sketch_is_healthy(self):
        sketch = FCMSketch.with_memory(32 * 1024, seed=1)
        sketch.ingest(zipf_trace(5_000, alpha=1.3, seed=3).keys)
        report = SketchHealthMonitor().assess(sketch)
        assert report.status is HealthStatus.HEALTHY
        assert report.healthy
        assert report.reasons == []
        assert report.suggested_degradation is DegradationLevel.FULL
        assert 0.0 < report.stage1_occupancy < 0.85
        assert report.error_bound > 0.0
        assert 0.0 < report.predicted_are < 1.0

    def test_saturated_sketch_is_flagged(self):
        sketch = FCMSketch(TINY)
        # One elephant past every stage: the single tree's last-stage
        # counter hits its sentinel -> hard saturation.
        sketch.update(1, 100_000)
        report = SketchHealthMonitor().assess(sketch, window_index=4)
        assert report.status is HealthStatus.SATURATED
        assert report.window_index == 4
        assert report.saturated_nodes >= 1
        assert any("saturation" in reason for reason in report.reasons)
        assert report.suggested_degradation is DegradationLevel.CRITICAL

    def test_occupancy_threshold_degrades(self):
        sketch = FCMSketch(TINY)
        sketch.ingest(np.arange(200, dtype=np.uint64))  # flood stage 1
        report = SketchHealthMonitor(
            HealthThresholds(saturated_nodes=10 ** 9,
                             occupancy_saturated=1.1,
                             predicted_are_degraded=10.0 ** 9),
        ).assess(sketch)
        assert report.stage1_occupancy >= 0.85
        assert report.status is HealthStatus.DEGRADED
        assert any("occupancy" in reason for reason in report.reasons)

    def test_overflowed_sketch_reports_max_degree(self):
        sketch = FCMSketch(TINY)
        sketch.update(1, 10)  # past the 2-bit stage-1 counter
        report = SketchHealthMonitor().assess(sketch)
        assert report.max_degree == TINY.k  # one interior stage overflowed

    def test_unhealthy_collection_degrades_without_sketch(self):
        health = CollectionHealth(window_index=2, switches_total=4,
                                  switches_reached=["s1"],
                                  switches_failed={"s2": "timeout"})
        report = SketchHealthMonitor().assess(
            None, window_index=2, collection_health=health)
        assert report.status is HealthStatus.DEGRADED
        assert any("collection unhealthy" in r for r in report.reasons)
        assert report.collection_degradation is health.degradation
        assert report.suggested_degradation >= health.degradation

    def test_nothing_to_assess_raises(self):
        with pytest.raises(ValueError):
            SketchHealthMonitor().assess(None)

    def test_topk_sketch_uses_residual_bound(self):
        topk = FCMTopK(32 * 1024, k=8, seed=1)
        fcm = FCMSketch.with_memory(32 * 1024, seed=1)
        keys = zipf_trace(20_000, alpha=1.3, seed=3).keys
        topk.ingest(keys)
        fcm.ingest(keys)
        topk_report = SketchHealthMonitor().assess(topk)
        fcm_report = SketchHealthMonitor().assess(fcm)
        assert topk_report.status is HealthStatus.HEALTHY
        # The Top-K stage absorbs the elephants, so the residual bound
        # must be no worse than plain FCM's on the same traffic.
        assert topk_report.error_bound <= fcm_report.error_bound


class TestHooksAndTelemetry:
    def test_hook_fires_only_on_transitions(self):
        monitor = SketchHealthMonitor()
        seen = []
        monitor.on_status_change(
            lambda window, prev, status, report:
            seen.append((window, prev, status)))
        clean = FCMSketch.with_memory(32 * 1024, seed=1)
        clean.update(7, 3)
        saturated = FCMSketch(TINY)
        saturated.update(1, 100_000)
        monitor.assess(clean, window_index=0)      # None -> HEALTHY
        monitor.assess(clean, window_index=1)      # no change
        monitor.assess(saturated, window_index=2)  # HEALTHY -> SATURATED
        assert seen == [
            (0, None, HealthStatus.HEALTHY),
            (2, HealthStatus.HEALTHY, HealthStatus.SATURATED),
        ]

    def test_assessment_publishes_metrics_and_event(self):
        registry = MetricsRegistry(exporter=MemoryExporter())
        monitor = SketchHealthMonitor(telemetry=registry)
        sketch = FCMSketch.with_memory(32 * 1024, seed=1)
        sketch.update(7, 3)
        monitor.assess(sketch, window_index=5)
        snap = registry.snapshot()
        assert snap["health.windows.healthy"] == 1
        assert snap["health.status"] == 0.0
        (event,) = registry.exporter.of_kind("health")
        assert event.name == "health.window"
        fields = event.as_dict()
        assert fields["window"] == 5
        assert fields["status"] == "HEALTHY"
        assert fields["suggested_degradation"] == "FULL"


# ----------------------------------------------------------------------
# chaos: fault windows must flip the collector's verdict
# ----------------------------------------------------------------------

@pytest.mark.chaos
def test_collector_health_flags_exactly_the_fault_windows():
    trace = zipf_trace(30_000, alpha=1.3, seed=11)
    plan = FaultPlan(seed=42).kill_switch("spine0", start_window=1,
                                          end_window=2)
    sim = NetworkSimulator(leaf_spine(num_leaves=4, num_spines=2),
                           memory_bytes=48 * 1024, seed=1,
                           fault_injector=FaultInjector(plan))
    collector = NetworkSketchCollector(sim)
    reports = collector.process(trace, 3)
    statuses = [r.sketch_health.status for r in reports]
    assert statuses == [HealthStatus.HEALTHY, HealthStatus.DEGRADED,
                        HealthStatus.HEALTHY]
    faulty = reports[1].sketch_health
    assert not faulty.healthy
    assert faulty.suggested_degradation >= DegradationLevel.DEGRADED
    assert any("collection unhealthy" in r for r in faulty.reasons)
    for clean in (reports[0], reports[2]):
        assert clean.sketch_health.healthy
        assert clean.sketch_health.suggested_degradation \
            is DegradationLevel.FULL
