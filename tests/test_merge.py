"""Tests for lossless FCM sketch merging (distributed collection)."""

import numpy as np
import pytest

from repro.core import FCMConfig, FCMSketch
from repro.core.tree import FCMTree
from repro.hashing import HashFamily
from repro.traffic import caida_like_trace, split_windows


class TestTreeMerge:
    def _tree(self, seed=1):
        cfg = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                        stage_widths=(16, 8, 4))
        return FCMTree(cfg, HashFamily(seed))

    def test_merge_equals_combined_ingest(self):
        a, b, combined = self._tree(), self._tree(), self._tree()
        keys_a = np.arange(500, dtype=np.uint64) % 40
        keys_b = (np.arange(700, dtype=np.uint64) * 3) % 40
        a.ingest(keys_a)
        b.ingest(keys_b)
        combined.ingest(np.concatenate([keys_a, keys_b]))
        a.merge_from(b)
        for left, right in zip(a.stage_values, combined.stage_values):
            assert np.array_equal(left, right)

    def test_rejects_geometry_mismatch(self):
        cfg_other = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                              stage_widths=(32, 16, 8))
        other = FCMTree(cfg_other, HashFamily(1))
        with pytest.raises(ValueError):
            self._tree().merge_from(other)

    def test_rejects_hash_mismatch(self):
        with pytest.raises(ValueError):
            self._tree(seed=1).merge_from(self._tree(seed=2))


class TestSketchMerge:
    def test_windowed_merge_equals_full_trace(self):
        trace = caida_like_trace(num_packets=40_000, seed=121)
        windows = split_windows(trace, 4)
        merged = FCMSketch.with_memory(16 * 1024, seed=5)
        for window in windows:
            part = FCMSketch.with_memory(16 * 1024, seed=5)
            part.ingest(window.keys)
            merged.merge(part)
        reference = FCMSketch.with_memory(16 * 1024, seed=5)
        reference.ingest(trace.keys)
        keys = trace.ground_truth.keys_array()
        assert np.array_equal(merged.query_many(keys),
                              reference.query_many(keys))
        assert merged.cardinality() == reference.cardinality()

    def test_rejects_config_mismatch(self):
        a = FCMSketch.with_memory(16 * 1024, seed=1)
        b = FCMSketch.with_memory(32 * 1024, seed=1)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_preserves_total(self):
        a = FCMSketch.with_memory(16 * 1024, seed=2)
        b = FCMSketch.with_memory(16 * 1024, seed=2)
        a.update(1, 5)
        b.update(2, 7)
        a.merge(b)
        assert a.total_packets == 12
