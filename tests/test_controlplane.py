"""Tests for the control-plane algorithms (§4.4) and the framework."""

import numpy as np
import pytest

from repro.controlplane import (
    HeavyChangeDetector,
    SketchCollector,
    estimate_distribution,
    estimate_entropy,
)
from repro.core import FCMSketch, FCMTopK
from repro.framework import FCMFramework
from repro.metrics import f1_score
from repro.traffic import Trace, caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return caida_like_trace(num_packets=60_000, seed=41)


class TestDistributionWrapper:
    def test_fcm_path(self, trace):
        sketch = FCMSketch.with_memory(16 * 1024, seed=1)
        sketch.ingest(trace.keys)
        result = estimate_distribution(sketch, iterations=4)
        assert result.total_flows == pytest.approx(
            trace.ground_truth.cardinality, rel=0.15
        )

    def test_topk_path_adds_heavy_flows(self, trace):
        sketch = FCMTopK(32 * 1024, seed=1)
        sketch.ingest(trace.keys)
        result = estimate_distribution(sketch, iterations=4)
        gt = trace.ground_truth
        # The largest flow must appear at (close to) its exact size.
        top_size = int(gt.sizes_array().max())
        window = result.size_counts[max(0, top_size - 2):top_size + 3]
        assert window.sum() >= 1

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            estimate_distribution(object())


class TestEntropyWrapper:
    def test_close_to_truth(self, trace):
        sketch = FCMSketch.with_memory(16 * 1024, seed=1)
        sketch.ingest(trace.keys)
        assert estimate_entropy(sketch, iterations=4) == pytest.approx(
            trace.ground_truth.entropy, rel=0.05
        )


class TestHeavyChange:
    def test_detects_planted_change(self):
        rng = np.random.default_rng(3)
        background = rng.integers(0, 5000, size=20_000, dtype=np.uint64)
        w1 = Trace(np.concatenate([background,
                                   np.full(3000, 77, dtype=np.uint64)]))
        w2 = Trace(background)
        a = FCMSketch.with_memory(32 * 1024, seed=2)
        b = FCMSketch.with_memory(32 * 1024, seed=2)
        a.ingest(w1.keys)
        b.ingest(w2.keys)
        detector = HeavyChangeDetector(a, b)
        candidates = np.union1d(w1.ground_truth.keys_array(),
                                w2.ground_truth.keys_array())
        changed = detector.detect([int(k) for k in candidates],
                                  threshold=1000)
        assert 77 in changed

    def test_no_change_no_report(self):
        keys = np.arange(1000, dtype=np.uint64)
        a = FCMSketch.with_memory(32 * 1024, seed=2)
        b = FCMSketch.with_memory(32 * 1024, seed=2)
        a.ingest(keys)
        b.ingest(keys)
        detector = HeavyChangeDetector(a, b)
        assert detector.detect([int(k) for k in keys], 100) == set()

    def test_f1_against_ground_truth(self, trace):
        from repro.traffic import split_windows
        first, second = split_windows(trace, 2)
        a = FCMSketch.with_memory(64 * 1024, seed=3)
        b = FCMSketch.with_memory(64 * 1024, seed=3)
        a.ingest(first.keys)
        b.ingest(second.keys)
        threshold = max(50, trace.heavy_hitter_threshold())
        truth = first.ground_truth.heavy_changes(second.ground_truth,
                                                 threshold)
        candidates = np.union1d(first.ground_truth.keys_array(),
                                second.ground_truth.keys_array())
        detected = HeavyChangeDetector(a, b).detect(
            [int(k) for k in candidates], threshold
        )
        assert f1_score(detected, truth) > 0.85

    def test_rejects_bad_threshold(self):
        detector = HeavyChangeDetector(
            FCMSketch.with_memory(8 * 1024),
            FCMSketch.with_memory(8 * 1024),
        )
        with pytest.raises(ValueError):
            detector.detect([1], 0)


class TestCollector:
    def test_window_reports(self, trace):
        collector = SketchCollector(
            sketch_factory=lambda: FCMSketch.with_memory(32 * 1024, seed=1)
        )
        reports = collector.process(trace, num_windows=3)
        assert len(reports) == 3
        assert sum(r.total_packets for r in reports) == len(trace)
        for report in reports:
            assert report.cardinality_estimate > 0

    def test_heavy_change_wiring(self, trace):
        collector = SketchCollector(
            sketch_factory=lambda: FCMSketch.with_memory(32 * 1024, seed=1),
            change_threshold=10_000,
        )
        reports = collector.process(trace, num_windows=2)
        assert reports[0].heavy_changes == set()
        assert isinstance(reports[1].heavy_changes, set)

    def test_em_opt_in(self, trace):
        collector = SketchCollector(
            sketch_factory=lambda: FCMSketch.with_memory(32 * 1024, seed=1),
            run_em=True,
        )
        reports = collector.process(trace, num_windows=2)
        assert all(r.distribution is not None for r in reports)


class TestFramework:
    def test_end_to_end_plain(self, trace):
        fw = FCMFramework(memory_bytes=32 * 1024, seed=2)
        fw.process_trace(trace)
        gt = trace.ground_truth
        key = int(gt.keys_array()[np.argmax(gt.sizes_array())])
        assert fw.flow_size(key) >= gt.size_of(key)
        assert fw.cardinality() == pytest.approx(gt.cardinality, rel=0.1)
        report = fw.report(gt.keys_array(),
                           heavy_hitter_threshold=trace
                           .heavy_hitter_threshold(),
                           run_em=False)
        assert report.total_packets == len(trace)

    def test_end_to_end_topk(self, trace):
        fw = FCMFramework(memory_bytes=48 * 1024, use_topk=True, seed=2)
        fw.process_trace(trace)
        gt = trace.ground_truth
        threshold = trace.heavy_hitter_threshold()
        truth = gt.heavy_hitters(threshold)
        reported = fw.heavy_hitters(gt.keys_array(), threshold)
        assert f1_score(reported, truth) > 0.9

    def test_entropy_and_distribution(self, trace):
        fw = FCMFramework(memory_bytes=32 * 1024, seed=2)
        fw.process_trace(trace)
        assert fw.entropy(iterations=4) == pytest.approx(
            trace.ground_truth.entropy, rel=0.05
        )

    def test_heavy_changes_between_frameworks(self):
        keys = np.arange(2000, dtype=np.uint64)
        a = FCMFramework(memory_bytes=32 * 1024, seed=1)
        b = FCMFramework(memory_bytes=32 * 1024, seed=1)
        a.process_packets(keys)
        b.process_packets(np.concatenate(
            [keys, np.full(500, 3, dtype=np.uint64)]
        ))
        changed = b.heavy_changes(a, [int(k) for k in keys], 300)
        assert changed == {3}
