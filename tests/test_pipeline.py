"""Tests for the PISA pipeline model and the per-packet FCM program."""

import numpy as np
import pytest

from repro.core import FCMConfig, FCMSketch
from repro.dataplane import (
    FCMPipeline,
    PipelineError,
    PisaPipeline,
    RegisterArray,
    StatefulALU,
    TofinoConstraints,
)


def small_config() -> FCMConfig:
    return FCMConfig(num_trees=2, k=4, stage_bits=(4, 8, 16),
                     stage_widths=(64, 16, 4), seed=7)


class TestRegisterArray:
    def test_read_write(self):
        reg = RegisterArray("r", 8, 4)
        reg.write(2, 255)
        assert reg.read(2) == 255

    def test_rejects_overflowing_value(self):
        reg = RegisterArray("r", 8, 4)
        with pytest.raises(PipelineError):
            reg.write(0, 256)

    def test_sram_accounting(self):
        assert RegisterArray("r", 16, 100).sram_bits == 1600

    def test_validation(self):
        with pytest.raises(ValueError):
            RegisterArray("r", 0, 4)


class TestStatefulALU:
    def test_single_access_per_packet(self):
        reg = RegisterArray("r", 8, 2)
        alu = StatefulALU(reg, lambda old: (old + 1, old))
        alu.execute(1, 0)
        with pytest.raises(PipelineError):
            alu.execute(1, 1)
        alu.execute(2, 1)  # next packet is fine


class TestPisaPipeline:
    def test_stage_cap(self):
        pipe = PisaPipeline(TofinoConstraints(num_stages=2))
        pipe.add_stage()
        pipe.add_stage()
        with pytest.raises(PipelineError):
            pipe.add_stage()

    def test_salu_cap_per_stage(self):
        constraints = TofinoConstraints(salus_per_stage=1)
        pipe = PisaPipeline(constraints)
        stage = pipe.add_stage()
        pipe.place_register(stage, "a", 8, 4, lambda old: (old, old))
        with pytest.raises(PipelineError):
            pipe.place_register(stage, "b", 8, 4, lambda old: (old, old))

    def test_sram_cap_per_stage(self):
        constraints = TofinoConstraints(sram_kb_per_stage=1)
        pipe = PisaPipeline(constraints)
        stage = pipe.add_stage()
        with pytest.raises(PipelineError):
            pipe.place_register(stage, "big", 32, 10_000,
                                lambda old: (old, old))


class TestFCMPipeline:
    def test_stages_used(self):
        pipeline = FCMPipeline(small_config())
        # 3 tree levels + the final min stage.
        assert pipeline.stages_used == 4

    def test_register_parity_with_vectorized_tree(self):
        """The hardware-equivalence claim (Figure 13): per-packet PISA
        registers == vectorized core, bit for bit."""
        config = small_config()
        pipeline = FCMPipeline(config)
        sketch = FCMSketch(config)
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 300, size=6000, dtype=np.uint64)
        for key in keys:
            pipeline.process_packet(int(key))
        sketch.ingest(keys)
        for tree_index, tree in enumerate(sketch.trees):
            hw = pipeline.register_values(tree_index)
            sw = tree.stage_values
            for level, (h, s) in enumerate(zip(hw, sw)):
                assert np.array_equal(h, s), f"tree {tree_index} " \
                    f"level {level} diverged"

    def test_process_packet_returns_running_estimate(self):
        pipeline = FCMPipeline(small_config())
        estimates = [pipeline.process_packet(42) for _ in range(20)]
        assert estimates == list(range(1, 21))

    def test_estimate_matches_sketch_query(self):
        config = small_config()
        pipeline = FCMPipeline(config)
        sketch = FCMSketch(config)
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 100, size=3000, dtype=np.uint64)
        last_estimate = {}
        for key in keys:
            last_estimate[int(key)] = pipeline.process_packet(int(key))
        sketch.ingest(keys)
        uniq, counts = np.unique(keys, return_counts=True)
        true_counts = dict(zip(uniq.tolist(), counts.tolist()))
        for key, estimate in last_estimate.items():
            # At the flow's last packet all its packets are counted, so
            # the in-flight estimate already covers the true size; later
            # packets of *other* flows can only grow the final query.
            assert true_counts[key] <= estimate <= sketch.query(key)

    def test_requires_derived_config(self):
        with pytest.raises(ValueError):
            FCMPipeline(FCMConfig())

    def test_paper_config_fits_tofino(self):
        """The paper's 1.3 MB two-tree 8-ary sketch must fit the
        Tofino constraints (it ran on real hardware)."""
        config = FCMConfig().with_memory(1_300_000)
        pipeline = FCMPipeline(config)
        assert pipeline.stages_used <= TofinoConstraints().num_stages
