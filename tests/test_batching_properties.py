"""Property tests for the batch-conflict-resolution ingest paths.

Hypothesis drives adversarial batches at tiny sketch sizes — many
repeats of few keys, collision-saturated key spaces, interleaved
singletons — and checks, for every order-dependent sketch:

* the declared relaxed contract holds bit-for-bit: ``ingest(batch)``
  equals the scalar ``update`` loop over the flow-grouped reordering
  of the batch (``REORDER_EQUIVALENT``),
* sketches tagged ``NO_UNDERESTIMATE`` never report below the exact
  per-flow count of the batch,
* querying is idempotent: a second ``query_many`` returns the same
  answers (no read path mutates state).

These complement ``tests/test_differential.py`` (fixed batch shapes at
larger sizes) by searching the input space for ordering bugs the fixed
shapes miss; failures shrink to minimal counterexample batches.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FCMTopK
from repro.sketches import (
    ColdFilterSketch,
    CUSketch,
    ElasticSketch,
    HashPipe,
)
from repro.sketches.batching import (
    NO_UNDERESTIMATE,
    REORDER_EQUIVALENT,
    flow_grouped_reordering,
)

MEMORY = 2 * 1024
SEED = 9

ORDER_DEPENDENT = {
    "cu": lambda: CUSketch(MEMORY, seed=SEED),
    # Elastic's heavy part alone needs >3 KB (64 entries x 4 levels).
    "elastic": lambda: ElasticSketch(8 * 1024, seed=SEED),
    "coldfilter": lambda: ColdFilterSketch(MEMORY, seed=SEED),
    "fcm_topk": lambda: FCMTopK(MEMORY, seed=SEED),
    "hashpipe": lambda: HashPipe(MEMORY, seed=SEED),
}

# Adversarial batch shapes.  Key spaces are tiny relative to the
# sketches' cell counts at MEMORY, so intra-batch cell conflicts (the
# scalar fallback path) occur constantly.

#: Many repeats of very few keys, in arbitrary interleavings.
repeat_heavy_batches = st.lists(
    st.sampled_from([3, 5, 9]), min_size=0, max_size=150)

#: Dense small key space: nearly every flow collides with another.
collision_batches = st.lists(
    st.integers(min_value=0, max_value=30), min_size=0, max_size=200)

#: Mostly-unique keys with a few repeated heavy flows interleaved.
mixed_batches = st.lists(
    st.one_of(st.integers(min_value=1000, max_value=100_000),
              st.sampled_from([7, 8])),
    min_size=0, max_size=150)

BATCH_STRATEGIES = {
    "repeat_heavy": repeat_heavy_batches,
    "collision": collision_batches,
    "mixed": mixed_batches,
}


def _as_batch(keys):
    return np.asarray(keys, dtype=np.uint64)


def _states_equal(a, b):
    sa, sb = a._state_arrays(), b._state_arrays()
    return (sorted(sa) == sorted(sb)
            and all(np.array_equal(sa[k], sb[k]) for k in sa))


@pytest.mark.parametrize("strategy_name", sorted(BATCH_STRATEGIES))
@pytest.mark.parametrize("name", sorted(ORDER_DEPENDENT))
def test_ingest_matches_flow_grouped_replay(name, strategy_name):
    factory = ORDER_DEPENDENT[name]
    assert REORDER_EQUIVALENT in factory().INGEST_GUARANTEES

    @settings(max_examples=30, deadline=None)
    @given(keys=BATCH_STRATEGIES[strategy_name])
    def check(keys):
        batch = _as_batch(keys)
        bulk = factory()
        bulk.ingest(batch)
        looped = factory()
        for key in flow_grouped_reordering(
                batch, order=looped.INGEST_REPLAY_ORDER):
            looped.update(int(key))
        assert _states_equal(bulk, looped), (
            f"{name}: ingest diverged from flow-grouped replay "
            f"on batch {keys!r}")

    check()


@pytest.mark.parametrize("strategy_name", sorted(BATCH_STRATEGIES))
@pytest.mark.parametrize("name", sorted(ORDER_DEPENDENT))
def test_no_underestimate_on_adversarial_batches(name, strategy_name):
    factory = ORDER_DEPENDENT[name]
    if NO_UNDERESTIMATE not in factory().INGEST_GUARANTEES:
        pytest.skip(f"{name} does not tag NO_UNDERESTIMATE")

    @settings(max_examples=30, deadline=None)
    @given(keys=BATCH_STRATEGIES[strategy_name])
    def check(keys):
        batch = _as_batch(keys)
        sketch = factory()
        sketch.ingest(batch)
        if batch.size == 0:
            return
        uniq, true_counts = np.unique(batch, return_counts=True)
        estimates = np.asarray(sketch.query_many(uniq))
        assert (estimates >= true_counts).all(), (
            f"{name} underestimated on batch {keys!r}")

    check()


@pytest.mark.parametrize("name", sorted(ORDER_DEPENDENT))
def test_requery_is_idempotent(name):
    factory = ORDER_DEPENDENT[name]

    @settings(max_examples=30, deadline=None)
    @given(keys=collision_batches)
    def check(keys):
        batch = _as_batch(keys)
        sketch = factory()
        sketch.ingest(batch)
        probe = np.unique(batch) if batch.size else np.arange(
            4, dtype=np.uint64)
        first = np.asarray(sketch.query_many(probe)).copy()
        second = np.asarray(sketch.query_many(probe))
        np.testing.assert_array_equal(
            first, second, err_msg=f"{name}: query mutated state")

    check()


@pytest.mark.parametrize("name", sorted(ORDER_DEPENDENT))
def test_split_ingest_equals_run_grouped_stream(name):
    """Ingesting a batch in two chunks equals one scalar pass over the
    two chunks' flow-grouped reorderings concatenated — the contract
    composes across calls (what the streaming runtime relies on)."""
    factory = ORDER_DEPENDENT[name]

    @settings(max_examples=30, deadline=None)
    @given(keys=collision_batches, split=st.integers(0, 200))
    def check(keys, split):
        batch = _as_batch(keys)
        split = min(split, batch.size)
        bulk = factory()
        bulk.ingest(batch[:split])
        bulk.ingest(batch[split:])
        looped = factory()
        for chunk in (batch[:split], batch[split:]):
            for key in flow_grouped_reordering(
                    chunk, order=looped.INGEST_REPLAY_ORDER):
                looped.update(int(key))
        assert _states_equal(bulk, looped), (
            f"{name}: chunked ingest diverged on {keys!r} @ {split}")

    check()
