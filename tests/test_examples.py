"""Smoke tests for the example scripts.

Each example is compiled always and executed end-to-end when
``REPRO_RUN_EXAMPLES=1`` (they take ~1 minute combined; CI time is
kept for the real test matrix).
"""

import os
import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

RUN_EXAMPLES = os.environ.get("REPRO_RUN_EXAMPLES") == "1"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(script):
    py_compile.compile(str(script), doraise=True)


@pytest.mark.skipif(not RUN_EXAMPLES,
                    reason="set REPRO_RUN_EXAMPLES=1 to execute examples")
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
