"""Observability-plane tests: scrape, expose, alert, audit, profile.

Pins the acceptance bar of the plane:

* streaming quantiles track ``numpy.quantile`` within the log-bucket
  resolution (hypothesis cross-check);
* OpenMetrics exposition and series NDJSON are byte-identical across
  two seeded runs, and the strict parser rejects malformed text;
* an injected drain stall trips the drain-latency SLO (and the
  service degrades through the alert hook), while a clean seeded
  trace fires **zero** alerts;
* the accuracy auditor's observed ARE stays within the health
  monitor's predicted envelope on clean traces, in both local and
  network (vantage-tap) modes.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane import NetworkSketchCollector, SketchCollector
from repro.core import FCMSketch
from repro.errors import InvalidWindowError
from repro.network import NetworkSimulator, leaf_spine
from repro.runtime import EpochConfig, EpochManager
from repro.service import BackpressurePolicy, MeasurementService, PressureConfig
from repro.telemetry import MemoryExporter, MetricsRegistry
from repro.telemetry.health import SketchHealthMonitor
from repro.telemetry.obsplane import (
    AccuracyAuditor,
    BurnRateRule,
    ObservabilityPlane,
    OpenMetricsError,
    Scraper,
    SeriesStore,
    SloObjective,
    SloTracker,
    TimeSeries,
    critical_path,
    default_service_slos,
    parse_openmetrics,
    profile_spans,
    render_dashboard,
    render_openmetrics,
    render_series_ndjson,
    sparkline,
)
from repro.telemetry.quantiles import BucketQuantiles, P2Quantile
from repro.traffic import zipf_trace


def make_sketch(seed=5):
    return FCMSketch.with_memory(64 * 1024, seed=seed)


def stream(n=20_000, seed=9):
    return zipf_trace(n, alpha=1.2, seed=seed).keys


class SteppingClock:
    """Deterministic clock advancing ``step`` per call (injectable)."""

    def __init__(self, step=1e-4):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


# ---------------------------------------------------------------------------
# streaming quantiles
# ---------------------------------------------------------------------------


class TestBucketQuantiles:
    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=200),
           st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=200, deadline=None)
    def test_tracks_numpy_within_bucket_resolution(self, values, q):
        sketch = BucketQuantiles()
        for v in values:
            sketch.observe(v)
        est = sketch.quantile(q)
        data = np.sort(np.asarray(values))
        n = len(data)
        # The estimate interpolates inside log-buckets, so it must sit
        # within one bucket factor of the neighbourhood of the target
        # rank (numpy's interpolation lands between adjacent ranks).
        rank = q * (n - 1)
        lo = data[max(0, int(np.floor(rank)) - 1)]
        hi = data[min(n - 1, int(np.ceil(rank)) + 1)]
        res = sketch.resolution()
        assert lo / res <= est <= hi * res

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_clamped_to_observed_range(self, values):
        sketch = BucketQuantiles()
        for v in values:
            sketch.observe(v)
        assert min(values) <= sketch.quantile(0.0)
        assert sketch.quantile(1.0) <= max(values)

    def test_histogram_quantiles_cross_checked_against_numpy(self):
        rng = np.random.default_rng(3)
        registry = MetricsRegistry(clock=lambda: 0.0)
        values = rng.lognormal(mean=0.0, sigma=1.5, size=5_000)
        for v in values:
            registry.observe("latency", float(v))
        hist = registry.histogram("latency")
        res = 2 ** (1 / 8)
        for q in (0.50, 0.95, 0.99):
            true = float(np.quantile(values, q))
            est = hist.quantile(q)
            assert true / res**2 <= est <= true * res**2
        summary = hist.summary()
        assert summary["p50"] == hist.quantile(0.50)
        assert summary["p95"] == hist.quantile(0.95)
        assert summary["p99"] == hist.quantile(0.99)

    def test_negative_and_zero_values(self):
        sketch = BucketQuantiles()
        for v in (-8.0, -4.0, 0.0, 4.0, 8.0):
            sketch.observe(v)
        assert sketch.quantile(0.0) == -8.0
        assert sketch.quantile(1.0) == 8.0
        assert -8.0 <= sketch.quantile(0.25) <= 0.0

    def test_p2_converges_on_seeded_stream(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 100.0, size=20_000)
        p50 = P2Quantile(0.5)
        p95 = P2Quantile(0.95)
        for v in values:
            p50.observe(float(v))
            p95.observe(float(v))
        assert abs(p50.value() - 50.0) < 3.0
        assert abs(p95.value() - 95.0) < 3.0

    def test_p2_exact_below_five_samples(self):
        p = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            p.observe(v)
        assert p.value() == 2.0


# ---------------------------------------------------------------------------
# series + scraper
# ---------------------------------------------------------------------------


class TestTimeSeries:
    def test_ring_buffer_evicts_oldest(self):
        series = TimeSeries("x", capacity=3)
        for tick in range(5):
            series.append(tick, tick * 10.0)
        assert series.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert series.latest == 40.0
        assert len(series) == 3

    def test_delta_and_rate(self):
        series = TimeSeries("c", kind="counter", capacity=8)
        for tick, value in enumerate([0, 5, 15, 30]):
            series.append(tick, value)
        assert series.delta(1) == 15.0
        assert series.delta(3) == 30.0
        assert series.rate(1) == 15.0
        assert series.rate(3) == 10.0
        assert series.window_max(3) == 30.0
        assert series.window_mean(1) == 22.5

    def test_windows_shorter_than_history(self):
        series = TimeSeries("g", capacity=8)
        series.append(0, 7.0)
        assert series.delta(5) == 0.0        # one point: no delta yet
        assert series.rate(5) == 0.0
        assert series.window_mean(5) == 7.0

    def test_quantile_requires_tracking(self):
        series = TimeSeries("g", capacity=8)
        with pytest.raises(ValueError):
            series.quantile(0.5)
        tracked = TimeSeries("g", capacity=8, track_quantiles=True)
        tracked.append(0, 1.0)
        tracked.quantile(0.95)
        with pytest.raises(ValueError):
            tracked.quantile(0.42)

    def test_invalid_capacity_and_window(self):
        with pytest.raises(ValueError):
            TimeSeries("x", capacity=0)
        series = TimeSeries("x")
        with pytest.raises(ValueError):
            series.delta(0)


class TestScraper:
    def test_scrapes_counters_gauges_histograms(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.inc("pkts", 10)
        registry.set_gauge("depth", 3.0)
        registry.observe("lat", 2.0)
        scraper = Scraper(registry)
        scraper.scrape()
        registry.inc("pkts", 5)
        scraper.scrape()
        store = scraper.store
        assert store.get("pkts").points() == [(0.0, 10.0), (1.0, 15.0)]
        assert store.get("depth").latest == 3.0
        assert store.get("lat.count").latest == 1.0
        assert store.get("lat.p99").latest > 0.0
        # the scraper's own bookkeeping gauge is scraped on the next pass
        assert registry.gauge("obs.scrapes").value == 2.0

    def test_logical_ticks_are_scrape_indices(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.inc("c")
        scraper = Scraper(registry)
        assert [scraper.scrape() for _ in range(3)] == [0.0, 1.0, 2.0]
        assert scraper.last_tick == 2.0

    def test_timer_histograms_excluded_by_default(self):
        clock = SteppingClock(0.5)
        registry = MetricsRegistry(clock=clock)
        with registry.timer("drain_seconds"):
            pass
        registry.observe("plain", 1.0)
        scraper = Scraper(registry)
        scraper.scrape()
        assert "drain_seconds.count" not in scraper.store
        assert "plain.count" in scraper.store
        wide = Scraper(registry, include_timers=True)
        wide.scrape()
        assert "drain_seconds.count" in wide.store

    def test_injected_tick_source(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        ticks = iter([10.0, 20.0])
        scraper = Scraper(registry, tick_source=lambda: next(ticks))
        assert scraper.scrape() == 10.0
        assert scraper.scrape() == 20.0


# ---------------------------------------------------------------------------
# exposition
# ---------------------------------------------------------------------------


def populated_registry():
    registry = MetricsRegistry(exporter=MemoryExporter(),
                               clock=lambda: 0.0)
    registry.inc("service.accepted", 1_000)
    registry.inc("service.shed", 25)
    registry.set_gauge("health.status", 1.0)
    for v in (0.5, 1.0, 2.0, 4.0):
        registry.observe("em.runtime_seconds", v)
    return registry


class TestOpenMetrics:
    def test_round_trip_strict_parse(self):
        text = render_openmetrics(populated_registry())
        samples = parse_openmetrics(text)
        assert samples["repro_service_accepted_total"] == 1_000.0
        assert samples["repro_service_shed_total"] == 25.0
        assert samples["repro_health_status"] == 1.0
        assert samples["repro_em_runtime_seconds_count"] == 4.0
        assert samples["repro_em_runtime_seconds_sum"] == 7.5
        assert 'repro_em_runtime_seconds{quantile="0.5"}' in samples
        assert text.endswith("# EOF\n")

    def test_byte_identical_across_seeded_runs(self):
        assert render_openmetrics(populated_registry()) \
            == render_openmetrics(populated_registry())

    def test_sanitize_collision_refused(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.inc("a.b")
        registry.inc("a_b")
        with pytest.raises(OpenMetricsError, match="sanitize"):
            render_openmetrics(registry)

    def test_timers_excluded_unless_requested(self):
        clock = SteppingClock(0.25)
        registry = MetricsRegistry(clock=clock)
        with registry.timer("span.drain"):
            pass
        assert "span_drain" not in render_openmetrics(registry)
        assert "repro_span_drain_count" in render_openmetrics(
            registry, include_timers=True)

    @pytest.mark.parametrize("text", [
        "",                                              # empty
        "repro_x 1\n",                                   # no EOF
        "repro_x 1\n# EOF\n",                            # sample before TYPE
        "# TYPE repro_x gauge\nrepro_x 1\n# TYPE repro_x gauge\n"
        "repro_x 2\n# EOF\n",                            # family twice
        "# TYPE repro_x gauge\nrepro_x 1\nrepro_x 1\n# EOF\n",  # dup sample
        "# TYPE repro_x counter\nrepro_x 1\n# EOF\n",    # counter w/o _total
        "# TYPE repro_x gauge\nrepro_y 1\n# EOF\n",      # sample outside fam
        "# TYPE repro_x gauge\nrepro_x{bad labels} 1\n# EOF\n",
        "# TYPE repro_x wibble\nrepro_x 1\n# EOF\n",     # unknown type
        "# TYPE repro_x gauge\nrepro_x one\n# EOF\n",    # non-numeric value
    ])
    def test_strict_parser_rejects_malformed(self, text):
        with pytest.raises(OpenMetricsError):
            parse_openmetrics(text)

    def test_series_ndjson_canonical_and_stable(self, tmp_path):
        def build():
            registry = populated_registry()
            scraper = Scraper(registry)
            scraper.scrape()
            registry.inc("service.accepted", 10)
            scraper.scrape()
            return scraper.store

        first = render_series_ndjson(build())
        assert first == render_series_ndjson(build())
        lines = first.strip().split("\n")
        import json

        names = [json.loads(line)["series"] for line in lines]
        assert names == sorted(names)
        assert json.loads(lines[0])["points"]


# ---------------------------------------------------------------------------
# SLO burn-rate alerting
# ---------------------------------------------------------------------------


def gauge_slo(target=1.0, budget=0.1,
              rules=(BurnRateRule(long_window=4, short_window=2,
                                  burn=4.0),)):
    return SloObjective(name="lat_p99", kind="gauge_ceiling",
                        metric="lat.p99", target=target, budget=budget,
                        rules=rules)


class TestSloTracker:
    def drive(self, tracker, store, values):
        series = store.series("lat.p99")
        changed = []
        for tick, value in enumerate(values):
            series.append(float(tick), value)
            changed.extend(tracker.evaluate(float(tick)))
        return changed

    def test_fires_when_both_windows_burn(self):
        store = SeriesStore()
        tracker = SloTracker(store, [gauge_slo()])
        # 2 good ticks, then sustained badness: short window saturates
        # immediately, long window crosses 4x budget on the 2nd bad tick
        # (2 bad / 4 ticks = 0.5 fraction / 0.1 budget = 5 >= 4).
        changed = self.drive(tracker, store, [0.5, 0.5, 5.0, 5.0, 5.0])
        assert len(changed) == 1
        alert = changed[0]
        assert alert.firing and alert.objective == "lat_p99"
        assert alert.burn_short >= 4.0 and alert.burn_long >= 4.0
        assert tracker.firing == [alert]

    def test_single_blip_does_not_fire(self):
        store = SeriesStore()
        tracker = SloTracker(store, [gauge_slo()])
        changed = self.drive(tracker, store,
                             [0.5, 5.0, 0.5, 0.5, 0.5, 0.5])
        # one bad tick in a 4-tick window = 0.25/0.1 = 2.5x burn on the
        # long window — under the 4x gate, so a blip never fires even
        # though the short window momentarily saturates.
        assert changed == []
        assert tracker.alerts == []

    def test_resolves_with_hysteresis(self):
        store = SeriesStore()
        tracker = SloTracker(store, [gauge_slo()])
        values = [5.0, 5.0, 5.0] + [0.5] * 6
        changed = self.drive(tracker, store, values)
        assert len(changed) == 2
        fired, resolved = changed
        assert fired is resolved
        assert resolved.resolved_tick is not None
        assert not resolved.firing
        assert tracker.firing == []
        # resolve happened only after the short window fully drained
        assert resolved.resolved_tick >= resolved.fired_tick + 2

    def test_missing_series_is_inactive(self):
        store = SeriesStore()
        tracker = SloTracker(store, [gauge_slo()])
        assert tracker.evaluate(0.0) == []
        assert tracker.alerts == []

    def test_ratio_needs_denominator_movement(self):
        store = SeriesStore()
        objective = SloObjective(name="shed", kind="ratio_ceiling",
                                 metric="s.shed", denominator="s.acc",
                                 target=0.05)
        shed, acc = store.series("s.shed"), store.series("s.acc")
        shed.append(0, 0.0)
        acc.append(0, 0.0)
        assert objective.measure(store) is None   # no traffic yet
        shed.append(1, 50.0)
        acc.append(1, 100.0)
        assert objective.measure(store) == pytest.approx(0.5)

    def test_rate_floor_measures_per_tick_rate(self):
        store = SeriesStore()
        objective = SloObjective(name="ingest", kind="rate_floor",
                                 metric="s.ing", target=100.0)
        series = store.series("s.ing", "counter")
        series.append(0, 0.0)
        assert objective.measure(store) is None
        series.append(1, 250.0)
        assert objective.measure(store) == pytest.approx(250.0)
        assert not objective.is_bad(250.0)
        assert objective.is_bad(50.0)

    def test_alert_hooks_see_fire_and_resolve(self):
        store = SeriesStore()
        seen = []
        tracker = SloTracker(store, [gauge_slo()])
        tracker.on_alert(lambda alert: seen.append(alert.firing))
        self.drive(tracker, store, [5.0, 5.0, 5.0] + [0.5] * 6)
        assert seen == [True, False]

    def test_telemetry_published(self):
        registry = MetricsRegistry(exporter=MemoryExporter(),
                                   clock=lambda: 0.0)
        store = SeriesStore()
        tracker = SloTracker(store, [gauge_slo()], telemetry=registry)
        self.drive(tracker, store, [5.0, 5.0, 5.0])
        assert registry.counter("slo.alerts.firing").value == 1
        assert registry.gauge("slo.lat_p99.firing").value == 1.0
        kinds = [e.kind for e in registry.exporter.events]
        assert "slo" in kinds

    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule(long_window=2, short_window=4, burn=1.0)
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="nope", metric="m", target=1.0)
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="ratio_ceiling", metric="m",
                         target=1.0)
        with pytest.raises(ValueError):
            SloTracker(SeriesStore(), [gauge_slo(), gauge_slo()])

    def test_default_service_slos_shape(self):
        objectives = default_service_slos(ingest_floor=2.0)
        names = {o.name for o in objectives}
        assert names == {"ingest_rate", "shed_fraction",
                         "drain_latency_p99", "em_runtime_p95"}
        ingest = next(o for o in objectives if o.name == "ingest_rate")
        assert ingest.target == 2.0 and ingest.kind == "rate_floor"


# ---------------------------------------------------------------------------
# accuracy audit
# ---------------------------------------------------------------------------


class _ExactSketch:
    """Query-only stand-in that answers from a dict (zero error)."""

    def __init__(self, counts, bias=0):
        self.counts = counts
        self.bias = bias

    def query(self, key):
        return self.counts.get(key, 0) + self.bias


class _FakeHealth:
    def __init__(self, predicted_are):
        self.predicted_are = predicted_are


class TestAccuracyAuditor:
    def test_sampling_is_deterministic_and_seed_scoped(self):
        a = AccuracyAuditor(sample_rate=0.2, seed=7)
        b = AccuracyAuditor(sample_rate=0.2, seed=7)
        c = AccuracyAuditor(sample_rate=0.2, seed=8)
        keys = list(range(1_000))
        set_a = {k for k in keys if a.is_sampled(k)}
        set_b = {k for k in keys if b.is_sampled(k)}
        set_c = {k for k in keys if c.is_sampled(k)}
        assert set_a == set_b
        assert set_a != set_c
        assert 0.1 < len(set_a) / len(keys) < 0.3

    def test_oracle_counts_are_exact(self):
        auditor = AccuracyAuditor(sample_rate=0.5, seed=3)
        keys = stream(5_000, seed=2)
        auditor.observe(keys)
        truth = {}
        for k in keys.tolist():
            if auditor.is_sampled(k):
                truth[k] = truth.get(k, 0) + 1
        assert auditor._oracle == truth
        report = auditor.seal(0, _ExactSketch(truth))
        assert report.observed_are == 0.0
        assert report.flows_audited == len(truth)
        assert report.packets_audited == sum(truth.values())
        assert auditor.tracked_flows == 0     # oracle reset at seal

    def test_observe_counts_matches_observe(self):
        plain = AccuracyAuditor(sample_rate=0.5, seed=3)
        agg = AccuracyAuditor(sample_rate=0.5, seed=3)
        keys = stream(4_000, seed=4)
        plain.observe(keys)
        uniques, counts = np.unique(keys, return_counts=True)
        agg.observe_counts(uniques, counts)
        assert plain._oracle == agg._oracle

    def test_calibration_and_envelope_verdict(self):
        auditor = AccuracyAuditor(sample_rate=1.0, seed=1)
        auditor.observe(np.asarray([1, 1, 1, 1], dtype=np.uint64))
        # estimate 5 vs truth 4: relative error 0.25
        report = auditor.seal(0, _ExactSketch({1: 4}, bias=1),
                              health=_FakeHealth(0.5))
        assert report.observed_are == pytest.approx(0.25)
        assert report.calibration == pytest.approx(0.5)
        assert report.within_envelope
        auditor.observe(np.asarray([1, 1, 1, 1], dtype=np.uint64))
        bad = auditor.seal(1, _ExactSketch({1: 4}, bias=1),
                           health=_FakeHealth(0.1))
        assert not bad.within_envelope
        assert bad.calibration == pytest.approx(2.5)

    def test_empty_epoch_audits_clean(self):
        auditor = AccuracyAuditor(sample_rate=0.05, seed=1)
        report = auditor.seal(0, _ExactSketch({}))
        assert report.flows_audited == 0
        assert report.observed_are == 0.0
        assert report.within_envelope

    def test_telemetry_publication(self):
        registry = MetricsRegistry(exporter=MemoryExporter(),
                                   clock=lambda: 0.0)
        auditor = AccuracyAuditor(sample_rate=1.0, seed=1,
                                  telemetry=registry)
        auditor.observe(np.asarray([7, 7], dtype=np.uint64))
        auditor.seal(0, _ExactSketch({7: 2}), health=_FakeHealth(0.2))
        assert registry.counter("audit.epochs").value == 1
        assert registry.gauge("audit.within_envelope").value == 1.0
        assert any(e.kind == "audit" for e in registry.exporter.events)

    def test_validation(self):
        with pytest.raises(ValueError):
            AccuracyAuditor(sample_rate=0.0)
        with pytest.raises(ValueError):
            AccuracyAuditor(sample_rate=1.5)
        with pytest.raises(ValueError):
            AccuracyAuditor(tolerance_factor=0.0)


class TestAuditWiring:
    def test_epoch_manager_audits_within_envelope_on_clean_trace(self):
        auditor = AccuracyAuditor(sample_rate=0.1, seed=2)
        manager = EpochManager(
            make_sketch,
            config=EpochConfig(epoch_packets=8_000, retention=8),
            health_monitor=SketchHealthMonitor(),
            auditor=auditor)
        manager.feed(stream(20_000, seed=11))
        sealed = [manager.store[i] for i in range(len(manager.store))]
        assert len(sealed) == 2
        for epoch in sealed:
            assert epoch.audit is not None
            assert epoch.audit.flows_audited > 0
            assert epoch.audit.predicted_are is not None
            # acceptance: observed ARE within the predicted envelope
            assert epoch.audit.within_envelope
        assert [r.epoch for r in auditor.reports] == [0, 1]

    def test_auditor_with_collector_mode_is_rejected(self):
        sim = NetworkSimulator(leaf_spine(4, 2), memory_bytes=16 * 1024)
        collector = NetworkSketchCollector(sim)
        with pytest.raises(InvalidWindowError):
            EpochManager(collector=collector,
                         config=EpochConfig(epoch_packets=4_000),
                         auditor=AccuracyAuditor())

    def test_sketch_collector_audits_windows(self):
        auditor = AccuracyAuditor(sample_rate=0.1, seed=2)
        collector = SketchCollector(
            sketch_factory=lambda: make_sketch(seed=1),
            health_monitor=SketchHealthMonitor(),
            auditor=auditor)
        trace = zipf_trace(16_000, alpha=1.2, seed=5)
        reports = collector.process(trace, num_windows=2)
        assert [r.audit.epoch for r in reports] == [0, 1]
        for report in reports:
            assert report.audit.flows_audited > 0
            assert report.audit.within_envelope

    def test_network_collector_audits_vantage_switch(self):
        sim = NetworkSimulator(leaf_spine(4, 2), memory_bytes=64 * 1024)
        auditor = AccuracyAuditor(sample_rate=0.2, seed=2)
        collector = NetworkSketchCollector(sim, auditor=auditor)
        assert sim.route_tap is not None
        trace = zipf_trace(12_000, alpha=1.2, seed=5)
        reports = collector.process(trace, num_windows=2)
        for report in reports:
            assert report.audit is not None
            # the vantage switch sees a routed subset, never more than
            # the whole window
            assert report.audit.packets_audited < len(trace)
            assert report.audit.flows_audited > 0
            # exact oracle vs the vantage sketch: FCM never
            # undercounts, and the sampled flows' errors stay small on
            # an uncongested sketch
            assert report.audit.observed_are < 0.5


# ---------------------------------------------------------------------------
# span profiles
# ---------------------------------------------------------------------------


class TestProfileSpans:
    def make_events(self):
        clock = SteppingClock(0.0)
        registry = MetricsRegistry(exporter=MemoryExporter(), clock=clock)

        def advance(seconds):
            clock.t += seconds

        with registry.span("window"):
            with registry.span("route"):
                advance(3.0)
            with registry.span("drain"):
                advance(1.0)
            advance(0.5)
        return registry.exporter.events

    def test_self_time_and_critical_path(self):
        profiles = {p.name: p for p in profile_spans(self.make_events())}
        assert profiles["route"].count == 1
        assert profiles["route"].total_s == pytest.approx(3.0)
        assert profiles["window"].total_s == pytest.approx(4.5)
        assert profiles["window"].self_s == pytest.approx(0.5)
        # route is the longest child: it carries critical time, drain
        # does not
        assert profiles["route"].critical_s == pytest.approx(3.0)
        assert profiles["drain"].critical_s == 0.0
        assert profiles["drain"].self_s == pytest.approx(1.0)

    def test_sorted_by_critical_time(self):
        profiles = profile_spans(self.make_events())
        crit = [p.critical_s for p in profiles]
        assert crit == sorted(crit, reverse=True)

    def test_critical_path_walk(self):
        from repro.telemetry.tracing import build_trace_trees, read_spans

        spans = read_spans(self.make_events())
        roots = next(iter(build_trace_trees(spans).values()))
        names = [node.name for node in critical_path(roots[0])]
        assert names == ["window", "route"]

    def test_stage_quantiles_and_dict(self):
        profiles = profile_spans(self.make_events())
        for profile in profiles:
            d = profile.as_dict()
            assert d["count"] == profile.count
            assert d["p95_s"] >= 0.0
            assert profile.mean_s <= profile.max_s + 1e-12

    def test_ignores_non_span_records(self):
        events = list(self.make_events())
        registry = MetricsRegistry(exporter=MemoryExporter(),
                                   clock=lambda: 0.0)
        registry.emit("window", "collector.window", packets=5)
        events.extend(registry.exporter.events)
        assert {p.name for p in profile_spans(events)} \
            == {"window", "route", "drain"}


# ---------------------------------------------------------------------------
# the plane end to end: clean runs, injected stall, dashboard
# ---------------------------------------------------------------------------


def build_serviced_plane(clock, *, epoch_packets=3_000,
                         drain_p99_ceiling=1.0):
    registry = MetricsRegistry(exporter=MemoryExporter(), clock=clock)
    manager = EpochManager(
        make_sketch,
        config=EpochConfig(epoch_packets=epoch_packets, retention=8),
        telemetry=registry,
        health_monitor=SketchHealthMonitor(telemetry=registry))
    service = MeasurementService(
        manager, pressure=PressureConfig(policy="block"),
        telemetry=registry, clock=clock)
    plane = ObservabilityPlane(
        registry,
        objectives=default_service_slos(
            drain_p99_ceiling=drain_p99_ceiling),
        include_timers=True)
    plane.on_alert(service.on_slo_alert)
    return registry, service, plane


def drive(service, plane, keys, batch=1_500):
    for start in range(0, len(keys), batch):
        service.admit("src", keys[start:start + batch])
        while service.queues.depth:
            service.ingest_step()
        plane.tick()


class TestPlaneEndToEnd:
    def test_clean_trace_fires_zero_alerts(self):
        clock = SteppingClock(1e-4)
        registry, service, plane = build_serviced_plane(clock)
        drive(service, plane, stream(15_000, seed=3))
        assert plane.slo.alerts == []
        assert plane.firing_alerts == []
        assert service.queues.config.policy is BackpressurePolicy.BLOCK
        report = service.drain_core()
        assert report.conserved

    def test_injected_stall_trips_drain_latency_slo(self):
        clock = SteppingClock(1e-4)
        registry, service, plane = build_serviced_plane(clock)
        keys = stream(24_000, seed=3)
        drive(service, plane, keys[:6_000])
        assert plane.slo.alerts == []
        # inject the stall: every clock read now costs 2 wall seconds,
        # so each epoch drain span blows through the 1s p99 ceiling
        clock.step = 2.0
        drive(service, plane, keys[6_000:])
        fired = [a for a in plane.slo.alerts
                 if a.objective == "drain_latency_p99"]
        assert fired, "injected stall must trip the drain-latency SLO"
        assert plane.firing_alerts
        # the alert hook degraded the service's admission policy
        assert service.queues.config.policy \
            is BackpressurePolicy.DEGRADE_SAMPLE
        assert service._normal_policy is BackpressurePolicy.BLOCK

    def test_plane_renders_all_surfaces(self):
        clock = SteppingClock(1e-4)
        registry, service, plane = build_serviced_plane(clock)
        drive(service, plane, stream(8_000, seed=3))
        text = plane.openmetrics()
        parse_openmetrics(text)               # strict: raises on bad text
        ndjson = plane.series_ndjson()
        assert ndjson.count("\n") == len(plane.store)
        profiles = plane.span_profiles()
        assert any(p.name == "runtime.drain" for p in profiles)
        board = plane.dashboard(width=80)
        assert "slo" in board and "stages" in board

    def test_on_alert_requires_objectives(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        plane = ObservabilityPlane(registry)
        with pytest.raises(ValueError):
            plane.on_alert(lambda alert: None)
        assert plane.firing_alerts == []


class TestDashboard:
    def test_sparkline_shapes(self):
        assert sparkline([], 8) == " " * 8
        line = sparkline([0.0, 1.0, 2.0, 3.0], 4)
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([5.0, 5.0], 2) == "▁▁"

    def test_render_dashboard_is_deterministic(self):
        def build():
            registry = populated_registry()
            scraper = Scraper(registry)
            scraper.scrape()
            registry.inc("service.accepted", 64)
            scraper.scrape()
            return render_dashboard(scraper.store, title="t", width=72)

        first = build()
        assert first == build()
        for line in first.split("\n"):
            assert len(line) <= 100


# ---------------------------------------------------------------------------
# CLI: deterministic one-shot runs
# ---------------------------------------------------------------------------


class TestObsCli:
    def run_once(self, tmp_path, tag):
        from repro.cli import main

        om = tmp_path / f"{tag}.om.txt"
        nd = tmp_path / f"{tag}.ndjson"
        code = main(["obs", "--once", "--packets", "12000",
                     "--epoch-packets", "4000", "--seed", "5",
                     "--openmetrics-out", str(om),
                     "--series-out", str(nd)])
        assert code == 0
        return om.read_text(), nd.read_text()

    def test_once_is_byte_stable_and_valid(self, tmp_path, capsys):
        om_a, nd_a = self.run_once(tmp_path, "a")
        om_b, nd_b = self.run_once(tmp_path, "b")
        assert om_a == om_b
        assert nd_a == nd_b
        samples = parse_openmetrics(om_a)
        assert samples["repro_service_accepted_total"] == 12_000.0
        assert samples["repro_audit_within_envelope"] == 1.0
        out = capsys.readouterr().out
        assert "ledger: accepted 12000" in out
        assert "[conserved]" in out
        assert "0 firing at exit" in out

    def test_telemetry_report_stage_table(self, tmp_path, capsys):
        from repro.cli import main

        ndjson = tmp_path / "events.ndjson"
        assert main(["obs", "--once", "--packets", "12000",
                     "--epoch-packets", "4000", "--seed", "5",
                     "--telemetry-out", str(ndjson)]) == 0
        capsys.readouterr()
        assert main(["telemetry-report", str(ndjson)]) == 0
        out = capsys.readouterr().out
        assert "Stage durations (critical-path ranked)" in out
        table = out.split("Stage durations (critical-path ranked) ==")[1]
        assert "runtime.drain" in table
        assert "critical_ms" in table

    def test_stage_table_empty_stream(self):
        from repro.telemetry.report import stage_table

        assert stage_table([]) == "no spans"
