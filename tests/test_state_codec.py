"""The mergeable-sketch protocol and its versioned state codec.

Every sketch in the zoo must either implement the full protocol
(``merge`` + ``to_state``/``from_state``) or raise a typed
:class:`~repro.errors.SketchCompatibilityError` naming the structural
reason it cannot.  The codec round-trip is pinned byte-identical: a
deserialized sketch re-serializes to the same bytes, and for every
mergeable sketch ``merge(a, b)`` equals ingesting the concatenated
streams.
"""

import numpy as np
import pytest

from repro.core import FCMSketch, FCMTopK
from repro.core.fcu import CUFCMSketch
from repro.engine import (
    CODEC_VERSION,
    ensure_compatible_state,
    pack_state,
    peek_kind,
    unpack_state,
)
from repro.errors import (
    MeasurementError,
    SketchCompatibilityError,
    StateCodecError,
)
from repro.sketches import (
    ColdFilterSketch,
    CountMinSketch,
    CountSketch,
    CUSketch,
    ElasticSketch,
    HashPipe,
    HyperLogLog,
    LinearCounting,
    MRAC,
    PyramidCMSketch,
    UnivMon,
)
from repro.traffic import zipf_trace

MEMORY = 16 * 1024

#: Sketches whose state is a commutative function of the stream —
#: they support lossless ``merge`` and the full codec.
MERGEABLE = {
    "fcm": lambda seed=1: FCMSketch.with_memory(MEMORY, seed=seed),
    "cm": lambda seed=1: CountMinSketch(MEMORY, seed=seed),
    "cs": lambda seed=1: CountSketch(MEMORY, seed=seed),
    "mrac": lambda seed=1: MRAC(MEMORY, seed=seed),
    "lc": lambda seed=1: LinearCounting(MEMORY, seed=seed),
    "hll": lambda seed=1: HyperLogLog(MEMORY, seed=seed),
    "pyramid": lambda seed=1: PyramidCMSketch(MEMORY, seed=seed),
    "univmon": lambda seed=1: UnivMon(MEMORY, seed=seed),
}

#: Order-dependent sketches: snapshot codec only, merge raises.
UNMERGEABLE = {
    "cu": lambda seed=1: CUSketch(MEMORY, seed=seed),
    "coldfilter": lambda seed=1: ColdFilterSketch(MEMORY, seed=seed),
    "hashpipe": lambda seed=1: HashPipe(MEMORY, seed=seed),
    "elastic": lambda seed=1: ElasticSketch(MEMORY, seed=seed),
    "fcm_topk": lambda seed=1: FCMTopK(MEMORY, seed=seed),
    "fcu": lambda seed=1: CUFCMSketch(MEMORY, seed=seed),
}

ALL = {**MERGEABLE, **UNMERGEABLE}


@pytest.fixture(scope="module")
def keys():
    return zipf_trace(20_000, alpha=1.2, seed=7).keys


# ----------------------------------------------------------------------
# codec round-trips
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(ALL))
def test_roundtrip_byte_identity(name, keys):
    sketch = ALL[name]()
    sketch.ingest(keys)
    blob = sketch.to_state()
    clone = ALL[name]().from_state(blob)
    assert clone.to_state() == blob


@pytest.mark.parametrize("name", sorted(ALL))
def test_roundtrip_preserves_queries(name, keys):
    sketch = ALL[name]()
    sketch.ingest(keys)
    clone = ALL[name]().from_state(sketch.to_state())
    probe = np.unique(keys)[:64]
    if hasattr(sketch, "query_many"):
        assert np.array_equal(sketch.query_many(probe),
                              clone.query_many(probe))
    else:
        assert sketch.cardinality() == clone.cardinality()


@pytest.mark.parametrize("name", sorted(ALL))
def test_peek_kind_matches(name, keys):
    sketch = ALL[name]()
    assert peek_kind(sketch.to_state()) == type(sketch).STATE_KIND


def test_empty_sketch_roundtrips():
    sketch = FCMSketch.with_memory(MEMORY, seed=1)
    blob = sketch.to_state()
    assert FCMSketch.with_memory(MEMORY, seed=1) \
        .from_state(blob).to_state() == blob


# ----------------------------------------------------------------------
# merge semantics
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(MERGEABLE))
def test_merge_equals_concatenated_stream(name, keys):
    half = keys.shape[0] // 2
    a, b, full = MERGEABLE[name](), MERGEABLE[name](), MERGEABLE[name]()
    a.ingest(keys[:half])
    b.ingest(keys[half:])
    full.ingest(keys)
    a.merge(b)
    assert a.to_state() == full.to_state()


@pytest.mark.parametrize("name", sorted(UNMERGEABLE))
def test_unmergeable_raises_typed_structural_reason(name):
    a, b = UNMERGEABLE[name](), UNMERGEABLE[name]()
    with pytest.raises(SketchCompatibilityError) as excinfo:
        a.merge(b)
    # The error must name the structural reason, not just refuse.
    message = str(excinfo.value)
    assert type(a).__name__ in message
    assert "order" in message


@pytest.mark.parametrize("name", sorted(MERGEABLE))
def test_merge_rejects_different_seed(name, keys):
    a = MERGEABLE[name](seed=1)
    b = MERGEABLE[name](seed=2)
    b.ingest(keys[:100])
    with pytest.raises(SketchCompatibilityError):
        a.merge(b)


def test_merge_rejects_different_type():
    with pytest.raises(SketchCompatibilityError):
        CountMinSketch(MEMORY, seed=1).merge(CountSketch(MEMORY, seed=1))


def test_merge_rejects_different_geometry():
    a = FCMSketch.with_memory(MEMORY, seed=1)
    b = FCMSketch.with_memory(2 * MEMORY, seed=1)
    with pytest.raises(SketchCompatibilityError):
        a.merge(b)


# ----------------------------------------------------------------------
# state compatibility checks
# ----------------------------------------------------------------------

def test_from_state_rejects_different_seed():
    a = CountMinSketch(MEMORY, seed=1)
    a.update(7, 3)
    with pytest.raises(SketchCompatibilityError) as excinfo:
        CountMinSketch(MEMORY, seed=2).from_state(a.to_state())
    assert "seed" in str(excinfo.value)


def test_from_state_rejects_different_kind():
    blob = CountMinSketch(MEMORY, seed=1).to_state()
    with pytest.raises(SketchCompatibilityError) as excinfo:
        CountSketch(MEMORY, seed=1).from_state(blob)
    assert "cm" in str(excinfo.value)


def test_from_state_rejects_different_geometry():
    blob = FCMSketch.with_memory(MEMORY, seed=1).to_state()
    with pytest.raises(SketchCompatibilityError):
        FCMSketch.with_memory(2 * MEMORY, seed=1).from_state(blob)


# ----------------------------------------------------------------------
# codec robustness
# ----------------------------------------------------------------------

def test_truncated_blob_rejected():
    blob = CountMinSketch(MEMORY, seed=1).to_state()
    with pytest.raises(StateCodecError):
        unpack_state(blob[: len(blob) // 2])


def test_bad_magic_rejected():
    blob = CountMinSketch(MEMORY, seed=1).to_state()
    with pytest.raises(StateCodecError):
        unpack_state(b"XXXX" + blob[4:])


def test_garbage_rejected():
    with pytest.raises(StateCodecError):
        unpack_state(b"\x00" * 16)


def test_trailing_bytes_rejected():
    blob = CountMinSketch(MEMORY, seed=1).to_state()
    with pytest.raises(StateCodecError):
        unpack_state(blob + b"\x00")


def test_pack_unpack_standalone():
    arrays = {"a": np.arange(8, dtype=np.int64)}
    blob = pack_state("demo", {"w": 8}, arrays)
    state = unpack_state(blob)
    assert state.kind == "demo"
    assert CODEC_VERSION == 1
    assert state.meta == {"w": 8}
    assert np.array_equal(state.arrays["a"], arrays["a"])
    ensure_compatible_state(state, "demo", {"w": 8}, "DemoSketch")
    with pytest.raises(SketchCompatibilityError):
        ensure_compatible_state(state, "demo", {"w": 9}, "DemoSketch")


# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------

def test_errors_remain_valueerrors():
    # Pre-protocol callers caught ValueError; the typed errors must
    # stay inside that contract.
    assert issubclass(SketchCompatibilityError, ValueError)
    assert issubclass(SketchCompatibilityError, MeasurementError)
    assert issubclass(StateCodecError, ValueError)
    assert issubclass(StateCodecError, MeasurementError)


@pytest.mark.parametrize("name", sorted(ALL))
def test_every_sketch_declares_protocol_position(name):
    sketch = ALL[name]()
    assert type(sketch).STATE_KIND is not None
    if name in UNMERGEABLE:
        assert type(sketch).UNMERGEABLE_REASON
