"""Tests for the MRAC baseline."""

import numpy as np
import pytest

from repro.metrics import weighted_mean_relative_error
from repro.sketches import MRAC
from repro.traffic import caida_like_trace


class TestMRACCounting:
    def test_single_hash_counter(self):
        m = MRAC(4096)
        m.update(5, count=4)
        assert m.query(5) == 4

    def test_ingest_equals_scalar(self):
        a = MRAC(1024, seed=2)
        b = MRAC(1024, seed=2)
        keys = np.arange(700, dtype=np.uint64) % 90
        for k in keys:
            a.update(int(k))
        b.ingest(keys)
        assert np.array_equal(a.counters, b.counters)

    def test_never_underestimates(self):
        trace = caida_like_trace(num_packets=30_000, seed=12)
        m = MRAC(8 * 1024)
        m.ingest(trace.keys)
        gt = trace.ground_truth
        assert np.all(m.query_many(gt.keys_array()) >= gt.sizes_array())

    def test_counters_sum_to_packets(self):
        trace = caida_like_trace(num_packets=30_000, seed=12)
        m = MRAC(8 * 1024)
        m.ingest(trace.keys)
        assert int(m.counters.sum()) == len(trace)


class TestMRACVirtualView:
    def test_degree_one_only(self):
        m = MRAC(2048)
        m.ingest(np.arange(300, dtype=np.uint64))
        array = m.to_virtual()
        assert np.all(array.degrees == 1)
        assert array.leaf_width == m.width
        assert array.num_empty_leaves == m.width - len(array)

    def test_total_preserved(self):
        m = MRAC(2048)
        m.ingest(np.arange(1000, dtype=np.uint64) % 77)
        assert m.to_virtual().total_value == 1000


class TestMRACDistribution:
    def test_em_recovers_distribution(self):
        trace = caida_like_trace(num_packets=60_000, seed=13)
        m = MRAC(32 * 1024)
        m.ingest(trace.keys)
        result = m.estimate_distribution(iterations=5)
        truth = trace.ground_truth.size_distribution_array()
        assert weighted_mean_relative_error(truth, result.size_counts) < 0.35
        assert result.total_flows == pytest.approx(
            trace.ground_truth.cardinality, rel=0.15
        )

    def test_callback_invoked(self):
        m = MRAC(4096)
        m.ingest(np.arange(200, dtype=np.uint64))
        seen = []
        m.estimate_distribution(iterations=3,
                                callback=lambda i, c: seen.append(i))
        assert seen == [1, 2, 3]
