"""Additional data-plane model tests: constraints, resource math and
query-path behaviour not covered by the parity tests."""

import numpy as np
import pytest

from repro.core import FCMConfig
from repro.dataplane import (
    FCMPipeline,
    PipelineError,
    PisaPipeline,
    TofinoConstraints,
    cm_topk_resources,
    fcm_resources,
    fcm_topk_resources,
)
from repro.dataplane.resources import ResourceReport


class TestConstraints:
    def test_totals(self):
        caps = TofinoConstraints()
        assert caps.total_salus == caps.num_stages * caps.salus_per_stage
        assert caps.total_sram_kb == caps.num_stages * caps.sram_kb_per_stage
        assert caps.total_hash_bits \
            == caps.num_stages * caps.hash_bits_per_stage

    def test_custom_constraints_flow_through(self):
        caps = TofinoConstraints(num_stages=3)
        pipe = PisaPipeline(caps)
        for _ in range(3):
            pipe.add_stage()
        with pytest.raises(PipelineError):
            pipe.add_stage()


class TestPipelineProgramLimits:
    def test_too_many_trees_exhausts_salus(self):
        """A stage holds at most 4 stateful ALUs, so a 5-tree FCM
        cannot be placed."""
        config = FCMConfig(num_trees=5, k=2, stage_bits=(4, 8),
                           stage_widths=(8, 4))
        with pytest.raises(PipelineError):
            FCMPipeline(config)

    def test_too_many_stages_rejected(self):
        config = FCMConfig(num_trees=1, k=2,
                           stage_bits=(2, 2, 2, 2, 4, 4, 4, 4, 8, 8,
                                       8, 8, 16),
                           stage_widths=tuple(4096 // (2 ** i)
                                              for i in range(13)))
        with pytest.raises(PipelineError):
            FCMPipeline(config)

    def test_oversized_stage_register_rejected(self):
        caps = TofinoConstraints(sram_kb_per_stage=4)
        config = FCMConfig(num_trees=1, k=2, stage_bits=(8, 16),
                           stage_widths=(1 << 16, 1 << 15))
        with pytest.raises(PipelineError):
            FCMPipeline(config, caps)


class TestResourceMath:
    def test_sram_scales_with_memory(self):
        small = fcm_resources(FCMConfig().with_memory(256 * 1024))
        large = fcm_resources(FCMConfig().with_memory(1 << 20))
        assert large.sram_pct > small.sram_pct
        assert large.salu_pct == small.salu_pct  # structure unchanged

    def test_more_trees_cost_salus_and_hashes(self):
        two = fcm_resources(FCMConfig(num_trees=2)
                            .with_memory(512 * 1024))
        three = fcm_resources(FCMConfig(num_trees=3)
                              .with_memory(512 * 1024))
        assert three.salu_pct > two.salu_pct
        assert three.hash_bits_pct > two.hash_bits_pct

    def test_requires_derived_widths(self):
        with pytest.raises(ValueError):
            fcm_resources(FCMConfig())

    def test_topk_adds_on_top_of_fcm(self):
        config = FCMConfig(k=16).with_memory(512 * 1024)
        base = fcm_resources(config)
        combo = fcm_topk_resources(config)
        assert combo.sram_pct > base.sram_pct
        assert combo.stages == base.stages + 4
        assert combo.vliw_pct > base.vliw_pct

    def test_cm_topk_stage_spill(self):
        """CM rows beyond the per-stage sALU cap spill into more
        stages."""
        shallow = cm_topk_resources(2, 100_000)
        deep = cm_topk_resources(8, 100_000)
        assert deep.stages > shallow.stages

    def test_normalized_to_handles_zero(self):
        a = ResourceReport("a", 1, 1, 0, 1, 1, 1, 4)
        b = ResourceReport("b", 0, 0, 0, 0, 0, 0, 4)
        ratios = a.normalized_to(b)
        assert ratios["SRAM"] == np.inf


class TestPipelineQueryPath:
    def test_saturated_leaf_routes_upward(self):
        config = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                           stage_widths=(4, 2, 1))
        pipeline = FCMPipeline(config)
        estimates = [pipeline.process_packet(0) for _ in range(30)]
        # Exact running count until the 2+14+? capacity is reached.
        assert estimates == list(range(1, 31))

    def test_last_stage_saturation_stops_growth(self):
        config = FCMConfig(num_trees=1, k=2, stage_bits=(2, 2, 2),
                           stage_widths=(4, 2, 1))
        pipeline = FCMPipeline(config)
        capacity = 2 + 2 + 3  # theta1 + theta2 + last-stage sentinel
        for _ in range(50):
            last = pipeline.process_packet(0)
        assert last == capacity
