"""Tests for Count-Sketch (UnivMon's substrate)."""

import numpy as np
import pytest

from repro.sketches import CountSketch


class TestCountSketch:
    def test_single_flow_exact(self):
        cs = CountSketch(8 * 1024)
        cs.update(3, count=11)
        assert cs.query(3) == 11

    def test_unbiased_roughly(self):
        """Median estimates over many flows should center on truth."""
        cs = CountSketch(16 * 1024, seed=2)
        keys = np.repeat(np.arange(2000, dtype=np.uint64), 5)
        cs.ingest(keys)
        estimates = cs.query_many(np.arange(2000, dtype=np.uint64))
        assert abs(float(np.mean(estimates)) - 5.0) < 1.0

    def test_ingest_equals_scalar(self):
        a = CountSketch(2048, seed=4)
        b = CountSketch(2048, seed=4)
        keys = np.arange(600, dtype=np.uint64) % 83
        for k in keys:
            a.update(int(k))
        b.ingest(keys)
        assert np.array_equal(a.counters, b.counters)

    def test_query_many_matches_scalar(self):
        cs = CountSketch(4096, seed=1)
        keys = (np.arange(1000, dtype=np.uint64) * 13) % 211
        cs.ingest(keys)
        uniq = np.unique(keys)
        vec = cs.query_many(uniq)
        for i, k in enumerate(uniq):
            assert vec[i] == cs.query(int(k))

    def test_add_aggregated(self):
        a = CountSketch(2048, seed=9)
        b = CountSketch(2048, seed=9)
        keys = np.array([1, 2, 3], dtype=np.uint64)
        counts = np.array([5, 7, 9])
        a.add_aggregated(keys, counts)
        for k, c in zip(keys, counts):
            for _ in range(c):
                b.update(int(k))
        assert np.array_equal(a.counters, b.counters)

    def test_l2_estimate_scale(self):
        cs = CountSketch(32 * 1024, seed=3)
        counts = np.full(500, 10)
        cs.add_aggregated(np.arange(500, dtype=np.uint64), counts)
        true_f2 = float(np.sum(counts.astype(float) ** 2))
        assert cs.l2_estimate() == pytest.approx(true_f2, rel=0.5)

    def test_signed_counters(self):
        """Counters can go negative — that's the point of the signs."""
        cs = CountSketch(1024, seed=6)
        cs.ingest(np.arange(5000, dtype=np.uint64))
        assert (cs.counters < 0).any()

    def test_rejects_depth_zero(self):
        with pytest.raises(ValueError):
            CountSketch(1024, depth=0)
