"""The epoch-streaming runtime: zero-gap rotation, drains, scopes.

Pins the acceptance bar of the runtime layer:

* a seeded stream is fully deterministic — byte-identical sealed
  snapshots and telemetry span streams across two runs, and across the
  inline / sharded / multiprocessing ingest backends;
* zero packets are lost at rotations (``sealed + live == fed``), even
  when a feed batch straddles an epoch boundary;
* sealed-epoch drains compose the existing layers: codec bytes,
  health verdicts, and (in network mode) the collector's
  retry/breaker/health machinery.
"""

import functools

import numpy as np
import pytest

from repro.controlplane import NetworkSketchCollector, ParallelSketchCollector
from repro.core import FCMSketch
from repro.errors import (
    EpochSnapshotUnavailableError,
    InvalidWindowError,
    MeasurementError,
)
from repro.network import NetworkSimulator, leaf_spine
from repro.robustness import (
    CollectionPolicy,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.runtime import (
    EpochConfig,
    EpochManager,
    SealedEpochStore,
    StreamingQueryAPI,
    parse_scope,
)
from repro.telemetry import MemoryExporter, MetricsRegistry
from repro.telemetry.health import HealthStatus, SketchHealthMonitor
from repro.traffic import zipf_trace

MEMORY = 16 * 1024


def make_sketch(memory_bytes=MEMORY, seed=5):
    return FCMSketch.with_memory(memory_bytes, seed=seed)


#: Module-level (hence picklable) factory for the process backend.
FACTORY = functools.partial(make_sketch, MEMORY, 5)


def stream(n=50_000, seed=9):
    return zipf_trace(n, alpha=1.2, seed=seed).keys


class TestEpochConfig:
    def test_validation(self):
        with pytest.raises(InvalidWindowError):
            EpochConfig(epoch_packets=0)
        with pytest.raises(InvalidWindowError):
            EpochConfig(epoch_seconds=-1.0)
        with pytest.raises(InvalidWindowError):
            EpochConfig(retention=0)
        with pytest.raises(InvalidWindowError):
            EpochConfig(change_threshold=0)

    def test_manager_validation(self):
        with pytest.raises(ValueError):
            EpochManager()  # neither mode
        with pytest.raises(ValueError):
            EpochManager(FACTORY, backend="threads")
        class NoCodecSketch:
            def ingest(self, keys):
                pass

        with pytest.raises(InvalidWindowError):
            # No state codec => cannot seal epochs as snapshot bytes.
            EpochManager(NoCodecSketch)


class TestZeroGapRotation:
    def test_ledger_exact_with_straddling_batches(self):
        manager = EpochManager(
            FACTORY, config=EpochConfig(epoch_packets=7_000, retention=64))
        keys = stream(30_000)
        # Batch size deliberately coprime with the epoch bound so most
        # batches straddle a boundary.
        for start in range(0, keys.size, 1_999):
            manager.feed(keys[start:start + 1_999])
        assert manager.packets_fed == keys.size
        sealed = sum(e.packets for e in manager.store)
        assert sealed + manager.live_packets == keys.size
        assert all(e.packets == 7_000 for e in manager.store)

    def test_fresh_generation_installed_before_drain(self):
        manager = EpochManager(
            FACTORY, config=EpochConfig(epoch_packets=10, retention=4))
        manager.feed(np.full(25, 3, dtype=np.uint64))
        # 25 packets over 10-packet epochs: 2 sealed, 5 live — the
        # 21st packet landed in generation 2 during the same feed call
        # that sealed generation 1.
        assert len(manager.store) == 2
        assert manager.live_epoch_index == 2
        assert manager.live_packets == 5

    def test_close_seals_live(self):
        manager = EpochManager(
            FACTORY, config=EpochConfig(epoch_packets=100, retention=4))
        manager.feed(np.arange(42, dtype=np.uint64))
        sealed = manager.close(seal_live=True)
        assert sealed is not None and sealed.packets == 42
        assert sealed.reason == "close"
        assert manager.live_packets == 0

    def test_manual_rotation_and_empty_epoch(self):
        manager = EpochManager(FACTORY, config=EpochConfig(retention=4))
        manager.feed([1, 2, 3])
        first = manager.rotate()
        second = manager.rotate()  # empty epoch seals cleanly
        assert first.packets == 3 and second.packets == 0
        assert [e.index for e in manager.store] == [0, 1]

    def test_time_bounded_rotation_with_injected_clock(self):
        now = {"t": 0.0}
        manager = EpochManager(
            FACTORY,
            config=EpochConfig(epoch_seconds=10.0, retention=4),
            clock=lambda: now["t"])
        manager.feed([1, 2, 3])
        assert len(manager.store) == 0
        now["t"] = 11.0
        manager.feed([4])
        assert len(manager.store) == 1
        assert manager.store[0].reason == "time_bound"
        assert manager.store[0].packets == 4


class TestRotationDeterminism:
    """Satellite: same seed + same batch boundaries => byte-identical
    sealed codec bytes and identical heavy-change output, under both
    inline and multiprocessing ingest backends."""

    BATCHES = (4_096, 4_096, 4_096, 4_096, 4_096)

    def _run(self, backend, batches=BATCHES):
        config = EpochConfig(epoch_packets=4_000, retention=64,
                             change_threshold=400)
        with EpochManager(FACTORY, config=config, backend=backend,
                          num_shards=2) as manager:
            keys = stream(sum(batches))
            offset = 0
            for batch in batches:
                manager.feed(keys[offset:offset + batch])
                offset += batch
            states = [e.state for e in manager.store]
            changes = [set(e.heavy_changes) for e in manager.store]
        return states, changes

    def test_two_runs_byte_identical(self):
        assert self._run("inline") == self._run("inline")

    @pytest.mark.parametrize("backend", ["sharded", "process", "pool:2"])
    def test_engine_backends_match_inline(self, backend):
        inline_states, inline_changes = self._run("inline")
        engine_states, engine_changes = self._run(backend)
        assert engine_states == inline_states
        assert engine_changes == inline_changes

    def test_batch_boundaries_do_not_matter_inline(self):
        # Different feed chunking, same stream: identical snapshots
        # (epoch boundaries are packet positions, not batch edges).
        a, _ = self._run("inline", batches=(20_480,))
        b, _ = self._run("inline", batches=(1, 10_239, 10_240))
        assert a == b

    def test_span_stream_byte_identical(self):
        def run():
            registry = MetricsRegistry(exporter=MemoryExporter(),
                                       clock=lambda: 0.0)
            config = EpochConfig(epoch_packets=4_000, retention=64)
            manager = EpochManager(FACTORY, config=config,
                                   telemetry=registry)
            keys = stream(20_000)
            for start in range(0, keys.size, 3_000):
                manager.feed(keys[start:start + 3_000])
            return registry.exporter.ndjson()

        first, second = run(), run()
        assert first == second
        assert '"name":"runtime.rotate"' in first
        assert '"name":"runtime.drain"' in first


class TestSealedEpochs:
    def test_snapshot_immutable_under_queries(self):
        manager = EpochManager(
            FACTORY, config=EpochConfig(epoch_packets=5_000, retention=8))
        manager.feed(stream(12_000))
        epoch = manager.store[0]
        blob = epoch.state
        sketch = epoch.sketch()
        sketch.query_many(np.arange(100, dtype=np.uint64))
        assert epoch.sketch().to_state() == blob

    def test_rehydrated_equals_original_estimates(self):
        manager = EpochManager(
            FACTORY, config=EpochConfig(epoch_packets=5_000, retention=8))
        keys = stream(5_000)
        manager.feed(keys)
        direct = FACTORY()
        direct.ingest(keys)
        uniq = np.unique(keys)
        assert np.array_equal(manager.store[0].sketch().query_many(uniq),
                              direct.query_many(uniq))

    def test_retention_bound_and_eviction(self):
        manager = EpochManager(
            FACTORY, config=EpochConfig(epoch_packets=1_000, retention=3))
        manager.feed(stream(9_000))
        assert len(manager.store) == 3
        assert manager.store.evicted == 6
        assert [e.index for e in manager.store] == [6, 7, 8]

    def test_store_validation_and_accessors(self):
        with pytest.raises(InvalidWindowError):
            SealedEpochStore(retention=0)
        store = SealedEpochStore(retention=2)
        assert len(store) == 0 and store.total_state_bytes == 0
        with pytest.raises(InvalidWindowError):
            store.last(0)

    def test_heavy_change_detection_between_epochs(self):
        config = EpochConfig(epoch_packets=2_000, retention=8,
                             change_threshold=500)
        manager = EpochManager(FACTORY, config=config)
        quiet = np.arange(1_000, 3_000, dtype=np.uint64)
        burst = np.concatenate([
            np.full(1_500, 7, dtype=np.uint64),
            np.arange(1_000, 1_500, dtype=np.uint64),
        ])
        manager.feed(quiet)   # epoch 0: flow 7 absent
        manager.feed(burst)   # epoch 1: flow 7 jumps by 1500
        assert len(manager.store) == 2
        assert 7 in manager.store[1].heavy_changes
        assert manager.store[0].heavy_changes == frozenset()


class TestSaturationRotation:
    def test_saturated_live_sketch_forces_rotation(self):
        monitor = SketchHealthMonitor()
        config = EpochConfig(rotate_on_saturation=True, retention=8)
        manager = EpochManager(
            functools.partial(make_sketch, 2_048, 5),
            config=config, health_monitor=monitor)
        rng = np.random.default_rng(1)
        for _ in range(40):
            manager.feed(rng.integers(0, 1 << 40, 2_000, dtype=np.uint64))
            if len(manager.store) > 0:
                break
        assert len(manager.store) > 0, "saturation never triggered"
        sealed = manager.store[0]
        assert sealed.reason == "saturation"
        assert sealed.health is not None
        assert sealed.health.status is HealthStatus.SATURATED


class TestQueryScopes:
    def test_parse_scope(self):
        assert parse_scope("live") == ("live", 0)
        assert parse_scope("sealed") == ("sealed", 0)
        assert parse_scope("last-sealed") == ("sealed", 0)
        assert parse_scope("last-3") == ("last", 3)
        assert parse_scope(2) == ("last", 2)
        assert parse_scope(("last", 4)) == ("last", 4)
        assert parse_scope("all") == ("all", 0)
        for bad in ("window", "last-0", "last-x", 0, -1, True, None):
            with pytest.raises((InvalidWindowError, MeasurementError)):
                parse_scope(bad)

    def test_scope_sums_and_no_underestimate(self):
        manager = EpochManager(
            FACTORY, config=EpochConfig(epoch_packets=4_000, retention=64))
        keys = stream(18_000)
        manager.feed(keys)
        api = StreamingQueryAPI(manager)
        uniq, counts = np.unique(keys, return_counts=True)
        assert np.all(api.query_many(uniq, scope="all") >= counts)
        live = api.query_many(uniq, scope="live")
        sealed_all = api.query_many(uniq, scope="last-4")
        assert np.array_equal(api.query_many(uniq, scope="all"),
                              live + sealed_all)
        one = api.query_many(uniq, scope="sealed")
        assert np.array_equal(
            one, manager.store[-1].sketch().query_many(uniq))
        key = int(uniq[np.argmax(counts)])
        assert api.query(key, scope="all") >= int(counts.max())

    def test_empty_store_scopes(self):
        manager = EpochManager(
            FACTORY, config=EpochConfig(epoch_packets=1000))
        api = StreamingQueryAPI(manager)
        assert api.query(5, scope="sealed") == 0
        assert api.query_many([5], scope="all").tolist() == [0]
        assert api.heavy_hitters([5], 1, scope="sealed") == set()
        assert api.cardinality("all") == api.cardinality("live")
        with pytest.raises(ValueError):
            api.heavy_hitters([5], 0)

    def test_heavy_hitters_and_cardinality(self):
        manager = EpochManager(
            FACTORY, config=EpochConfig(epoch_packets=2_000, retention=8))
        keys = np.concatenate([
            np.full(3_000, 42, dtype=np.uint64),
            np.arange(500, dtype=np.uint64),
        ])
        manager.feed(keys)
        api = StreamingQueryAPI(manager)
        assert 42 in api.heavy_hitters([42, 1], 2_500, scope="all")
        assert 42 not in api.heavy_hitters([42, 1], 2_500, scope="live")
        assert api.cardinality("all") > 0
        assert api.heavy_hitters([], 5, scope="all") == set()


class TestNetworkRuntime:
    def _manager(self, collector_cls=ParallelSketchCollector,
                 plan=None, telemetry=None, **kwargs):
        injector = FaultInjector(plan) if plan is not None else None
        sim = NetworkSimulator(leaf_spine(4, 2), memory_bytes=MEMORY,
                               fault_injector=injector,
                               telemetry=telemetry)
        collector = collector_cls(sim, telemetry=telemetry, **kwargs)
        config = EpochConfig(epoch_packets=5_000, retention=4)
        return EpochManager(collector=collector, config=config,
                            telemetry=telemetry)

    def test_sealed_epochs_carry_switch_snapshots(self):
        manager = self._manager()
        manager.feed(stream(12_000, seed=3))
        assert len(manager.store) == 2
        epoch = manager.store[-1]
        assert set(epoch.states) == set(
            manager.collector.simulator.switches)
        assert epoch.state == epoch.states[manager.collector.em_switch]
        assert epoch.report is not None
        assert epoch.report.health.healthy
        assert epoch.health is not None

    def test_queries_use_vantage_snapshot(self):
        manager = self._manager()
        keys = stream(12_000, seed=3)
        manager.feed(keys)
        api = StreamingQueryAPI(manager)
        key = int(keys[0])
        assert api.query(key, scope="all") >= api.query(key, scope="live")

    def test_dead_switch_recorded_not_raised(self):
        plan = FaultPlan(seed=1).kill_switch("leaf1")
        manager = self._manager(
            collector_cls=NetworkSketchCollector, plan=plan,
            policy=CollectionPolicy(retry=RetryPolicy(max_attempts=1)))
        manager.feed(stream(12_000, seed=3))
        epoch = manager.store[-1]
        assert "leaf1" in epoch.report.health.switches_failed
        assert "leaf1" not in epoch.states
        assert not epoch.report.health.healthy

    def test_dead_vantage_snapshot_unavailable(self):
        plan = FaultPlan(seed=1).kill_switch("leaf0")
        manager = self._manager(
            collector_cls=NetworkSketchCollector, plan=plan,
            policy=CollectionPolicy(retry=RetryPolicy(max_attempts=1)),
            em_switch="leaf0")
        manager.feed(stream(12_000, seed=3))
        epoch = manager.store[-1]
        assert epoch.state is None
        with pytest.raises(EpochSnapshotUnavailableError):
            epoch.sketch()

    def test_drain_epoch_spans_nest_under_rotation(self):
        registry = MetricsRegistry(exporter=MemoryExporter(),
                                   clock=lambda: 0.0)
        manager = self._manager(telemetry=registry)
        manager.feed(stream(6_000, seed=3))
        spans = [e for e in registry.exporter.events if e.kind == "span"]
        names = {e.name for e in spans}
        assert {"runtime.rotate", "runtime.drain",
                "collector.drain_epoch", "collector.drain"} <= names
        drain_epoch = next(e for e in spans
                           if e.name == "collector.drain_epoch")
        runtime_drain = next(e for e in spans
                             if e.name == "runtime.drain")
        assert drain_epoch.fields["parent_id"] \
            == runtime_drain.fields["span_id"]


class TestStreamCLI:
    def test_stream_subcommand(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "stream.ndjson"
        assert main(["stream", "--packets", "9000",
                     "--epoch-packets", "3000", "--memory-kb", "32",
                     "--change-threshold", "200",
                     "--telemetry-out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "zero-gap ok" in captured
        assert "epoch" in captured
        text = out.read_text()
        assert '"name":"runtime.rotate"' in text

    def test_stream_deterministic_output(self, capsys):
        from repro.cli import main

        runs = []
        for _ in range(2):
            assert main(["stream", "--packets", "6000",
                         "--epoch-packets", "2000",
                         "--memory-kb", "32", "--seed", "4"]) == 0
            runs.append(capsys.readouterr().out)
        assert runs[0] == runs[1]


class _BlockingSketch(FCMSketch):
    """FCM sketch whose ``ingest`` parks on an event — lets a test
    hold a ``feed`` open from another thread."""

    entered = None
    release = None

    def ingest(self, keys):
        if self.entered is not None:
            self.entered.set()
            assert self.release.wait(timeout=10)
        super().ingest(keys)


class TestSingleWriter:
    """The runtime is single-writer: concurrent mutation fails loudly
    with ``ConcurrencyError`` instead of corrupting the ledger."""

    def test_rotate_during_concurrent_feed_raises(self):
        import threading

        from repro.errors import ConcurrencyError

        entered = threading.Event()
        release = threading.Event()

        def factory():
            sketch = _BlockingSketch.with_memory(MEMORY, seed=5)
            sketch.entered = entered
            sketch.release = release
            return sketch

        manager = EpochManager(factory)
        worker = threading.Thread(
            target=manager.feed,
            args=(np.arange(10, dtype=np.uint64),))
        worker.start()
        try:
            assert entered.wait(timeout=10)
            with pytest.raises(ConcurrencyError):
                manager.rotate()
            with pytest.raises(ConcurrencyError):
                manager.feed(np.arange(5, dtype=np.uint64))
        finally:
            release.set()
            worker.join(timeout=10)
        assert not worker.is_alive()
        # Once the writer finishes, the runtime works again and the
        # blocked attempts changed nothing.
        sealed = manager.rotate()
        assert sealed.packets == 10
        assert manager.packets_fed == 10

    def test_concurrency_error_is_measurement_error(self):
        from repro.errors import ConcurrencyError

        assert issubclass(ConcurrencyError, MeasurementError)
        assert issubclass(ConcurrencyError, RuntimeError)

    def test_same_thread_reentry_allowed(self):
        """Boundary rotations run *inside* feed (same thread) — the
        guard must be reentrant, not a plain mutex."""
        manager = EpochManager(
            make_sketch, config=EpochConfig(epoch_packets=8))
        manager.feed(np.arange(20, dtype=np.uint64))   # rotates twice
        assert manager.rotations == 2
        assert manager.packets_fed == 20
