"""Tests for the EM estimator (§4.2-§4.3): combination enumeration,
feasibility constraints (the paper's Omega(V=9, xi=2) example) and
end-to-end distribution recovery."""

import numpy as np
import pytest

from repro.core import FCMSketch
from repro.core.em import (
    EMConfig,
    EMEstimator,
    EMResult,
    _can_cover,
    _partitions,
    enumerate_combinations,
)
from repro.core.virtual import VirtualCounterArray, convert_sketch
from repro.metrics import weighted_mean_relative_error
from repro.traffic import caida_like_trace


class TestPartitions:
    def test_partitions_of_four(self):
        parts = sorted(tuple(p) for p in _partitions(4, 4))
        assert parts == [(1, 1, 1, 1), (1, 1, 2), (1, 3), (2, 2), (4,)]

    def test_max_parts_respected(self):
        assert all(len(p) <= 2 for p in _partitions(10, 2))

    def test_parts_sum_to_value(self):
        for p in _partitions(9, 3):
            assert sum(p) == 9

    def test_non_decreasing(self):
        for p in _partitions(12, 4):
            assert p == sorted(p)

    def test_count_matches_partition_function(self):
        # p(n) for n = 8 into at most 8 parts is 22.
        assert sum(1 for _ in _partitions(8, 8)) == 22

    def test_empty_for_nonpositive(self):
        assert list(_partitions(0, 3)) == []
        assert list(_partitions(5, 0)) == []


class TestCanCover:
    def test_single_group(self):
        assert _can_cover((5,), 1, 3)
        assert not _can_cover((2,), 1, 3)

    def test_paper_example_pairs(self):
        # V=9, xi=2, per-path minimum 3: {3,6} and {4,5} are feasible.
        assert _can_cover((6, 3), 2, 3)
        assert _can_cover((5, 4), 2, 3)
        # {1,8} is not: the size-1 flow cannot overflow its leaf.
        assert not _can_cover((8, 1), 2, 3)

    def test_grouping_small_parts(self):
        # {1,2,6}: the 1 and 2 together cover one leaf (sum 3).
        assert _can_cover((6, 2, 1), 2, 3)
        # {1,1,7}: 1+1 < 3, so no valid split exists.
        assert not _can_cover((7, 1, 1), 2, 3)

    def test_needs_enough_parts(self):
        assert not _can_cover((9,), 2, 3)

    def test_three_groups(self):
        assert _can_cover((4, 3, 3), 3, 3)
        assert not _can_cover((8, 1, 1), 3, 3)


class TestEnumerateCombinations:
    def test_paper_omega_example(self):
        """Omega(V=9, xi=2) with theta_1 = 2 (Figure 5's discussion)."""
        combos = enumerate_combinations(9, 2, min_path=3, max_flows=2)
        as_sets = {tuple(np.repeat(sizes, mults))
                   for sizes, mults in combos}
        assert as_sets == {(3, 6), (4, 5)}

    def test_more_flows_allowed(self):
        combos = enumerate_combinations(9, 2, min_path=3, max_flows=3)
        flat = {tuple(np.repeat(s, m)) for s, m in combos}
        assert (1, 2, 6) in flat  # 1+2 covers one leaf
        assert (1, 1, 7) not in flat

    def test_degree_one_unconstrained(self):
        combos = enumerate_combinations(5, 1, min_path=1, max_flows=2)
        flat = {tuple(np.repeat(s, m)) for s, m in combos}
        assert flat == {(5,), (1, 4), (2, 3)}

    def test_at_least_degree_flows(self):
        combos = enumerate_combinations(6, 3, min_path=1, max_flows=4)
        assert all(sum(m) >= 3 for _, m in combos)

    def test_empty_when_infeasible(self):
        # Two paths each needing >= 3 cannot sum to 4.
        assert enumerate_combinations(4, 2, min_path=3, max_flows=4) == ()

    def test_zero_value(self):
        assert enumerate_combinations(0, 1, 1, 4) == ()

    def test_multiplicities_compact(self):
        for sizes, mults in enumerate_combinations(8, 1, 1, 4):
            assert len(sizes) == len(set(sizes))
            assert len(sizes) == len(mults)


class TestEMConfig:
    def test_truncation_ladder(self):
        cfg = EMConfig(exact_threshold=80, pair_threshold=400,
                       tight_threshold=2000, max_extra_flows=3)
        assert cfg.max_flows_for(50, 1) == 4
        assert cfg.max_flows_for(200, 1) == 2
        assert cfg.max_flows_for(1000, 2) == 2
        assert cfg.max_flows_for(5000, 1) == 0  # deterministic


class TestEMEndToEnd:
    def test_recovers_uniform_small_flows(self):
        """All flows of size 2 in a lightly loaded sketch: EM should
        put nearly all mass at size 2."""
        sketch = FCMSketch.with_memory(32 * 1024, seed=1)
        for key in range(400):
            sketch.update(key, count=2)
        result = EMEstimator(convert_sketch(sketch)).run(iterations=8)
        assert result.total_flows == pytest.approx(400, rel=0.1)
        assert result.size_counts[2] > 0.8 * result.total_flows

    def test_improves_over_iterations(self):
        trace = caida_like_trace(num_packets=60_000, seed=5)
        sketch = FCMSketch.with_memory(8 * 1024, seed=3)
        sketch.ingest(trace.keys)
        truth = trace.ground_truth.size_distribution_array()
        estimator = EMEstimator(convert_sketch(sketch))
        wmres = []

        def track(_iteration, counts):
            wmres.append(weighted_mean_relative_error(truth, counts))

        estimator.run(iterations=6, callback=track)
        assert wmres[-1] <= wmres[0]

    def test_total_flows_close_to_truth(self):
        trace = caida_like_trace(num_packets=60_000, seed=6)
        sketch = FCMSketch.with_memory(16 * 1024, seed=3)
        sketch.ingest(trace.keys)
        result = EMEstimator(convert_sketch(sketch)).run(iterations=5)
        assert result.total_flows == pytest.approx(
            trace.ground_truth.cardinality, rel=0.15
        )

    def test_entropy_close_to_truth(self):
        trace = caida_like_trace(num_packets=60_000, seed=7)
        sketch = FCMSketch.with_memory(16 * 1024, seed=3)
        sketch.ingest(trace.keys)
        result = EMEstimator(convert_sketch(sketch)).run(iterations=5)
        assert result.entropy == pytest.approx(
            trace.ground_truth.entropy, rel=0.05
        )

    def test_result_views(self):
        sketch = FCMSketch.with_memory(16 * 1024)
        sketch.update(1, count=3)
        sketch.update(2, count=3)
        result = EMEstimator(convert_sketch(sketch)).run(iterations=3)
        assert isinstance(result, EMResult)
        assert result.phi.sum() == pytest.approx(1.0)
        dist = result.distribution()
        assert pytest.approx(sum(dist.values()), rel=1e-6) \
            == result.total_flows

    def test_parallel_matches_serial(self):
        sketch = FCMSketch.with_memory(8 * 1024, seed=2)
        rng = np.random.default_rng(1)
        sketch.ingest(rng.integers(0, 3000, size=20_000, dtype=np.uint64))
        arrays = convert_sketch(sketch)
        serial = EMEstimator(arrays, EMConfig(workers=1)).run(iterations=3)
        parallel = EMEstimator(arrays, EMConfig(workers=2)).run(iterations=3)
        np.testing.assert_allclose(serial.size_counts,
                                   parallel.size_counts, rtol=1e-9)

    def test_requires_arrays(self):
        with pytest.raises(ValueError):
            EMEstimator([])

    def test_empty_sketch(self):
        sketch = FCMSketch.with_memory(8 * 1024)
        result = EMEstimator(convert_sketch(sketch)).run(iterations=2)
        assert result.total_flows == pytest.approx(0.0, abs=1e-3)
