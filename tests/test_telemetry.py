"""Unit tests for the telemetry layer and its instrumentation hooks."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.controlplane.distribution import estimate_distribution
from repro.core import FCMSketch
from repro.robustness import CollectionHealth, DegradationLevel
from repro.telemetry import (
    MemoryExporter,
    MetricsRegistry,
    NDJSONExporter,
    TelemetryEvent,
)
from repro.telemetry.registry import Counter, Gauge, Histogram, Timer
from repro.traffic import zipf_trace


# ----------------------------------------------------------------------
# metric primitives
# ----------------------------------------------------------------------

def test_counter_increments_and_rejects_negative():
    counter = Counter("c")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(3.5)
    gauge.set(-1.0)
    assert gauge.value == -1.0


def test_histogram_aggregates():
    hist = Histogram("h")
    for v in (1.0, 2.0, 3.0):
        hist.observe(v)
    assert hist.count == 3
    assert hist.total == 6.0
    assert hist.min == 1.0
    assert hist.max == 3.0
    assert hist.mean == 2.0
    assert hist.std == pytest.approx(math.sqrt(2.0 / 3.0))


def test_empty_histogram_summary_is_all_zero():
    summary = Histogram("h").summary()
    assert summary == {"count": 0, "sum": 0.0, "mean": 0.0,
                       "min": 0.0, "max": 0.0, "std": 0.0,
                       "p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_timer_uses_injected_clock():
    ticks = iter([10.0, 13.5])
    hist = Histogram("t")
    with Timer(hist, clock=lambda: next(ticks)):
        pass
    assert hist.count == 1
    assert hist.total == pytest.approx(3.5)


# ----------------------------------------------------------------------
# registry + exporters
# ----------------------------------------------------------------------

def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")
    assert registry.names() == {"a": "counter", "b": "gauge",
                                "c": "histogram"}


def test_emit_without_exporter_is_noop_and_holds_seq():
    registry = MetricsRegistry()
    registry.emit("kind", "name", x=1)
    registry.exporter = MemoryExporter()
    registry.emit("kind", "first", x=2)
    assert registry.exporter.events[0].seq == 0


def test_memory_exporter_records_gap_free_sequence():
    exporter = MemoryExporter()
    registry = MetricsRegistry(exporter=exporter)
    for i in range(5):
        registry.emit("k", f"e{i}", i=i)
    assert [e.seq for e in exporter.events] == list(range(5))
    assert [e.name for e in exporter.of_kind("k")] == \
        [f"e{i}" for i in range(5)]


def test_event_json_is_canonical_and_sorted():
    event = TelemetryEvent(seq=0, kind="k", name="n",
                           fields={"b": np.int64(2), "a": [np.float64(1.5)]})
    line = event.to_json()
    assert line == '{"a":[1.5],"b":2,"kind":"k","name":"n","seq":0}'
    assert json.loads(line)["a"] == [1.5]


def test_ndjson_exporter_round_trip(tmp_path):
    path = tmp_path / "events.ndjson"
    with NDJSONExporter(str(path)) as exporter:
        registry = MetricsRegistry(exporter=exporter)
        registry.emit("k", "one", value=1)
        registry.emit("k", "two", value=2)
    lines = path.read_text().splitlines()
    assert exporter.events_written == 2
    assert [json.loads(line)["name"] for line in lines] == ["one", "two"]


def test_snapshot_can_exclude_timer_histograms():
    ticks = iter([0.0, 1.0])
    registry = MetricsRegistry(clock=lambda: next(ticks))
    with registry.timer("op.seconds"):
        pass
    registry.observe("plain.hist", 2.0)
    full = registry.snapshot()
    assert "op.seconds" in full and "plain.hist" in full
    stable = registry.snapshot(include_timers=False)
    assert "op.seconds" not in stable
    assert "plain.hist" in stable


def test_snapshot_is_sorted_and_typed():
    registry = MetricsRegistry()
    registry.inc("z.counter", 2)
    registry.set_gauge("a.gauge", 1.5)
    registry.observe("m.hist", 4.0)
    snap = registry.snapshot()
    assert snap["z.counter"] == 2
    assert snap["a.gauge"] == 1.5
    assert snap["m.hist"]["count"] == 1


# ----------------------------------------------------------------------
# instrumentation through the library
# ----------------------------------------------------------------------

@pytest.fixture()
def trace_keys():
    return zipf_trace(5_000, alpha=1.3, seed=2).keys


def test_fcm_ingest_and_query_counters(trace_keys):
    registry = MetricsRegistry()
    sketch = FCMSketch.with_memory(32 * 1024, seed=1, telemetry=registry)
    sketch.ingest(trace_keys)
    sketch.query(int(trace_keys[0]))
    sketch.query_many(trace_keys[:10])
    snap = registry.snapshot()
    assert snap["fcm.ingest.calls"] == 1
    assert snap["fcm.ingest.packets"] == trace_keys.shape[0]
    assert snap["fcm.query.calls"] == 1
    assert snap["fcm.query.keys"] == 11


def test_fcm_emit_state_publishes_gauges(trace_keys):
    exporter = MemoryExporter()
    registry = MetricsRegistry(exporter=exporter)
    sketch = FCMSketch.with_memory(32 * 1024, seed=1, telemetry=registry)
    sketch.ingest(trace_keys)
    state = sketch.emit_state()
    snap = registry.snapshot()
    assert snap["fcm.tree0.stage1.occupancy"] == \
        state["trees"][0]["occupancy"][0]
    assert snap["fcm.tree0.empty_leaves"] == \
        state["trees"][0]["empty_leaves"]
    assert snap["fcm.total_packets"] == trace_keys.shape[0]
    assert exporter.of_kind("sketch")[-1].name == "fcm.state"


def test_fcm_merge_counter(trace_keys):
    registry = MetricsRegistry()
    a = FCMSketch.with_memory(32 * 1024, seed=1, telemetry=registry)
    b = FCMSketch.with_memory(32 * 1024, seed=1)
    a.ingest(trace_keys[:100])
    b.ingest(trace_keys[100:200])
    a.merge(b)
    assert registry.snapshot()["fcm.merges"] == 1


def test_attach_telemetry_after_construction(trace_keys):
    sketch = FCMSketch.with_memory(32 * 1024, seed=1)
    registry = MetricsRegistry()
    sketch.attach_telemetry(registry, name="edge")
    sketch.ingest(trace_keys[:50])
    assert registry.snapshot()["edge.ingest.packets"] == 50
    sketch.attach_telemetry(None)
    sketch.ingest(trace_keys[50:100])
    assert registry.snapshot()["edge.ingest.packets"] == 50


def test_em_instrumentation(trace_keys):
    exporter = MemoryExporter()
    registry = MetricsRegistry(exporter=exporter)
    sketch = FCMSketch.with_memory(32 * 1024, seed=1)
    sketch.ingest(trace_keys)
    estimate_distribution(sketch, iterations=3, telemetry=registry)
    snap = registry.snapshot()
    assert snap["em.runs"] == 1
    assert snap["em.iterations"] == 3
    assert snap["em.iterations_per_run"]["count"] == 1
    assert snap["em.runtime_seconds"]["count"] == 1
    assert [e.name for e in exporter.of_kind("em")] == \
        ["em.iteration"] * 3 + ["em.run"]


def test_collection_health_event_fields_are_flat_and_serializable():
    health = CollectionHealth(window_index=3, switches_total=4,
                              switches_reached=["s1", "s2"],
                              switches_failed={"s4": "timeout"})
    fields = health.event_fields()
    assert fields["window"] == 3
    assert fields["switches_reached"] == 2
    assert fields["switches_failed"] == ["s4"]
    assert not fields["healthy"]
    assert fields["degradation"] == health.degradation.name
    assert isinstance(health.degradation, DegradationLevel)
    json.dumps(fields)  # must be exportable as-is


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

def _run_pipeline(path: str) -> None:
    with NDJSONExporter(path) as exporter:
        registry = MetricsRegistry(exporter=exporter,
                                   clock=lambda: 0.0)
        keys = zipf_trace(5_000, alpha=1.3, seed=2).keys
        sketch = FCMSketch.with_memory(32 * 1024, seed=1,
                                       telemetry=registry)
        sketch.ingest(keys)
        sketch.emit_state()
        estimate_distribution(sketch, iterations=3, telemetry=registry)
        registry.emit("summary", "run.metrics", **registry.snapshot())


def test_event_stream_is_byte_identical_across_runs(tmp_path):
    first, second = tmp_path / "a.ndjson", tmp_path / "b.ndjson"
    _run_pipeline(str(first))
    _run_pipeline(str(second))
    assert first.read_bytes() == second.read_bytes()
    assert first.stat().st_size > 0


def test_cli_telemetry_out(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "cli.ndjson"
    rc = main(["evaluate", "--sketch", "fcm", "--packets", "20000",
               "--em-iterations", "2", "--telemetry-out", str(out)])
    assert rc == 0
    lines = out.read_text().splitlines()
    assert lines, "CLI produced no telemetry events"
    records = [json.loads(line) for line in lines]
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert records[-1]["name"] == "run.metrics"
    assert "telemetry:" in capsys.readouterr().out
