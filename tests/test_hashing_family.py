"""Tests for the vectorized hash family."""

import numpy as np
import pytest

from repro.hashing import HashFamily, splitmix64
from repro.hashing.family import hash_families


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_64_bit_range(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) <= 2**64 - 1

    def test_avalanche(self):
        """Flipping one input bit should flip ~half the output bits."""
        for bit in (0, 17, 40, 63):
            a = splitmix64(0xABCDEF)
            b = splitmix64(0xABCDEF ^ (1 << bit))
            flipped = bin(a ^ b).count("1")
            assert 16 <= flipped <= 48


class TestHashFamilyScalarVectorParity:
    def test_hash64_parity(self):
        h = HashFamily(seed=3)
        keys = np.arange(100, dtype=np.uint64)
        vec = h.hash64(keys)
        for i, k in enumerate(keys):
            assert int(vec[i]) == h.hash64(int(k))

    def test_index_parity(self):
        h = HashFamily(seed=11)
        keys = np.arange(500, dtype=np.uint64)
        vec = h.index(keys, 37)
        for i, k in enumerate(keys):
            assert int(vec[i]) == h.index(int(k), 37)

    def test_sign_parity(self):
        h = HashFamily(seed=5)
        keys = np.arange(200, dtype=np.uint64)
        vec = h.sign(keys)
        for i, k in enumerate(keys):
            assert int(vec[i]) == h.sign(int(k))

    def test_leading_zeros_parity(self):
        h = HashFamily(seed=8)
        keys = np.arange(300, dtype=np.uint64)
        for bits in (16, 32, 58, 64):
            vec = h.leading_zeros(keys, bits=bits)
            for i, k in enumerate(keys):
                assert int(vec[i]) == h.leading_zeros(int(k), bits=bits)

    def test_sample_bits_parity(self):
        h = HashFamily(seed=21)
        keys = np.arange(400, dtype=np.uint64)
        for level in (0, 1, 3, 7):
            vec = h.sample_bits(keys, level)
            for i, k in enumerate(keys):
                assert bool(vec[i]) == bool(h.sample_bits(int(k), level))


class TestHashFamilyBehaviour:
    def test_index_range(self):
        h = HashFamily(seed=1)
        idx = h.index(np.arange(10_000, dtype=np.uint64), 101)
        assert idx.min() >= 0 and idx.max() < 101

    def test_index_rejects_bad_width(self):
        with pytest.raises(ValueError):
            HashFamily(0).index(1, 0)

    def test_uniformity(self):
        h = HashFamily(seed=2)
        idx = h.index(np.arange(64_000, dtype=np.uint64), 64)
        counts = np.bincount(idx, minlength=64)
        assert counts.min() > 700 and counts.max() < 1300

    def test_seeds_decorrelated(self):
        keys = np.arange(1000, dtype=np.uint64)
        a = HashFamily(1).index(keys, 1000)
        b = HashFamily(2).index(keys, 1000)
        matches = int(np.sum(a == b))
        assert matches < 30  # ~1/1000 expected per key

    def test_sign_balance(self):
        signs = HashFamily(9).sign(np.arange(10_000, dtype=np.uint64))
        assert abs(int(signs.sum())) < 500

    def test_sample_bits_halving(self):
        h = HashFamily(13)
        keys = np.arange(100_000, dtype=np.uint64)
        prev = 100_000
        for level in range(1, 6):
            survivors = int(h.sample_bits(keys, level).sum())
            assert 0.35 * prev < survivors < 0.65 * prev
            prev = survivors

    def test_sample_bits_nested(self):
        """A key sampled at level l must be sampled at all lower levels."""
        h = HashFamily(17)
        keys = np.arange(50_000, dtype=np.uint64)
        deep = h.sample_bits(keys, 4)
        shallow = h.sample_bits(keys, 2)
        assert not np.any(deep & ~shallow)

    def test_leading_zeros_range(self):
        h = HashFamily(4)
        lz = h.leading_zeros(np.arange(10_000, dtype=np.uint64), bits=32)
        assert lz.min() >= 0 and lz.max() <= 32

    def test_leading_zeros_geometric(self):
        """P(leading zeros >= r) should be ~2^-r."""
        h = HashFamily(6)
        lz = h.leading_zeros(np.arange(100_000, dtype=np.uint64), bits=64)
        for r in range(1, 8):
            frac = float(np.mean(lz >= r))
            assert 0.5 * 2**-r < frac < 2.0 * 2**-r

    def test_hash_families_count(self):
        fams = hash_families(5, base_seed=3)
        assert len(fams) == 5
        assert len({f.seed for f in fams}) == 5

    def test_hash_families_rejects_zero(self):
        with pytest.raises(ValueError):
            hash_families(0)
