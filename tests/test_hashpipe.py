"""Tests for the HashPipe heavy-hitter baseline."""

import numpy as np
import pytest

from repro.sketches import HashPipe
from repro.traffic import caida_like_trace


class TestHashPipe:
    def test_single_flow_tracked_exactly(self):
        hp = HashPipe(4 * 1024)
        for _ in range(10):
            hp.update(5)
        assert hp.query(5) == 10

    def test_absent_key_zero(self):
        hp = HashPipe(4 * 1024)
        hp.update(1)
        assert hp.query(99999) == 0

    def test_heavy_flows_survive_churn(self):
        hp = HashPipe(8 * 1024, seed=2)
        rng = np.random.default_rng(0)
        heavy = np.full(5000, 7, dtype=np.uint64)
        noise = rng.integers(100, 100_000, size=20_000, dtype=np.uint64)
        stream = rng.permutation(np.concatenate([heavy, noise]))
        hp.ingest(stream)
        hitters = hp.heavy_hitters([], threshold=1000)
        assert 7 in hitters

    def test_heavy_hitters_enumerate_resident_keys(self):
        trace = caida_like_trace(num_packets=60_000, seed=3)
        hp = HashPipe(16 * 1024, seed=1)
        hp.ingest(trace.keys)
        threshold = trace.heavy_hitter_threshold()
        truth = trace.ground_truth.heavy_hitters(threshold)
        reported = hp.heavy_hitters([], threshold)
        from repro.metrics import f1_score
        assert f1_score(reported, truth) > 0.7

    def test_never_overestimates(self):
        """HashPipe splits a flow across stages; summing resident
        entries can never exceed the true count."""
        trace = caida_like_trace(num_packets=30_000, seed=4)
        hp = HashPipe(8 * 1024)
        hp.ingest(trace.keys)
        gt = trace.ground_truth
        est = hp.query_many(gt.keys_array())
        assert np.all(est <= gt.sizes_array())

    def test_memory_budget(self):
        hp = HashPipe(12_000)
        assert hp.memory_bytes <= 12_000
        assert hp.slots_per_stage == 12_000 // 12 // 6

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            HashPipe(1024, stages=0)
        with pytest.raises(ValueError):
            HashPipe(1024).update(1, count=-1)
        with pytest.raises(ValueError):
            HashPipe(1024).heavy_hitters([], 0)

    def test_update_with_count(self):
        hp = HashPipe(4096)
        hp.update(3, count=5)
        assert hp.query(3) == 5
