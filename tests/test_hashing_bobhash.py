"""Tests for the scalar BobHash (lookup3) implementation."""

import pytest

from repro.hashing import bobhash


class TestBobhashBasics:
    def test_empty_key_returns_initial_c(self):
        # lookup3: hashing zero bytes returns the initialized c lane.
        assert bobhash(b"", 0) == 0xDEADBEEF

    def test_empty_key_with_seed(self):
        assert bobhash(b"", 1) == (0xDEADBEEF + 1) & 0xFFFFFFFF

    def test_deterministic(self):
        assert bobhash(b"flow-key", 42) == bobhash(b"flow-key", 42)

    def test_seed_changes_value(self):
        assert bobhash(b"flow-key", 0) != bobhash(b"flow-key", 1)

    def test_key_changes_value(self):
        assert bobhash(b"flow-a", 0) != bobhash(b"flow-b", 0)

    def test_returns_32_bit(self):
        for key in (b"", b"a", b"x" * 100):
            value = bobhash(key, 7)
            assert 0 <= value <= 0xFFFFFFFF

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            bobhash("a string", 0)  # type: ignore[arg-type]


class TestBobhashTailHandling:
    """Every tail length 1..12 exercises a distinct padding path."""

    def test_all_tail_lengths_distinct_from_each_other(self):
        values = {bobhash(b"z" * n, 3) for n in range(1, 13)}
        assert len(values) == 12

    def test_long_keys_cross_block_boundary(self):
        # 13+ bytes exercises the mix loop.
        a = bobhash(b"q" * 13, 0)
        b = bobhash(b"q" * 25, 0)
        assert a != b

    def test_trailing_zero_bytes_matter(self):
        # Appending explicit NUL bytes must change the hash (length is
        # folded into the initial state).
        assert bobhash(b"abc", 0) != bobhash(b"abc\x00", 0)


class TestBobhashDistribution:
    def test_bit_balance(self):
        """Each output bit should be set roughly half the time."""
        n = 2000
        counts = [0] * 32
        for i in range(n):
            h = bobhash(i.to_bytes(4, "little"), 0)
            for bit in range(32):
                counts[bit] += (h >> bit) & 1
        for bit, count in enumerate(counts):
            assert 0.4 * n < count < 0.6 * n, f"bit {bit} unbalanced"

    def test_bucket_uniformity(self):
        """Hash values should spread evenly over a small modulus."""
        buckets = [0] * 16
        n = 4096
        for i in range(n):
            buckets[bobhash(i.to_bytes(4, "little"), 9) % 16] += 1
        expected = n / 16
        for count in buckets:
            assert 0.7 * expected < count < 1.3 * expected
