"""Tests for trace CSV import/export."""

import numpy as np
import pytest

from repro.traffic import Trace, pack_ipv4


class TestCsvRoundtrip:
    def test_ipv4_keys(self, tmp_path):
        keys = [pack_ipv4("10.0.0.1"), pack_ipv4("10.0.0.2"),
                pack_ipv4("10.0.0.1")]
        trace = Trace(keys, name="t")
        path = str(tmp_path / "trace.csv")
        trace.to_csv(path)
        loaded = Trace.from_csv(path)
        assert np.array_equal(loaded.keys, trace.keys)

    def test_large_integer_keys(self, tmp_path):
        keys = [1 << 40, (1 << 40) + 1]
        trace = Trace(keys)
        path = str(tmp_path / "trace.csv")
        trace.to_csv(path)
        loaded = Trace.from_csv(path)
        assert np.array_equal(loaded.keys, trace.keys)

    def test_header_and_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "manual.csv"
        path.write_text("flow_key\n10.0.0.1\n\n192.168.1.1\n")
        loaded = Trace.from_csv(str(path))
        assert len(loaded) == 2
        assert int(loaded.keys[0]) == pack_ipv4("10.0.0.1")

    def test_default_name_is_path(self, tmp_path):
        path = str(tmp_path / "x.csv")
        Trace([1, 2]).to_csv(path)
        assert Trace.from_csv(path).name == path

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Trace.from_csv(str(tmp_path / "nope.csv"))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("flow_key\n")
        with pytest.raises(ValueError):
            Trace.from_csv(str(path))

    def test_csv_usable_by_sketch(self, tmp_path):
        from repro import FCMSketch

        trace = Trace(np.arange(100, dtype=np.uint64))
        path = str(tmp_path / "t.csv")
        trace.to_csv(path)
        sketch = FCMSketch.with_memory(8 * 1024)
        sketch.ingest(Trace.from_csv(path).keys)
        assert sketch.total_packets == 100
