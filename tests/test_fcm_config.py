"""Tests for FCMConfig geometry and memory derivation."""

import pytest

from repro.core.config import FCMConfig
from repro.errors import SketchMemoryError


class TestValidation:
    def test_defaults_are_paper_defaults(self):
        cfg = FCMConfig()
        assert cfg.num_trees == 2
        assert cfg.k == 8
        assert cfg.stage_bits == (8, 16, 32)

    def test_rejects_zero_trees(self):
        with pytest.raises(ValueError):
            FCMConfig(num_trees=0)

    def test_rejects_unary_tree(self):
        with pytest.raises(ValueError):
            FCMConfig(k=1)

    def test_rejects_no_stages(self):
        with pytest.raises(ValueError):
            FCMConfig(stage_bits=())

    def test_rejects_decreasing_bits(self):
        with pytest.raises(ValueError):
            FCMConfig(stage_bits=(16, 8))

    def test_rejects_one_bit_counter(self):
        with pytest.raises(ValueError):
            FCMConfig(stage_bits=(1, 8))

    def test_rejects_widths_not_k_multiples(self):
        with pytest.raises(ValueError):
            FCMConfig(k=8, stage_bits=(8, 16), stage_widths=(64, 4))

    def test_rejects_width_length_mismatch(self):
        with pytest.raises(ValueError):
            FCMConfig(stage_bits=(8, 16, 32), stage_widths=(64, 8))


class TestDerivedProperties:
    def test_counting_ranges_and_sentinels(self):
        cfg = FCMConfig(stage_bits=(2, 4, 8))
        assert cfg.counting_ranges == [2, 14, 254]
        assert cfg.sentinels == [3, 15, 255]

    def test_num_stages(self):
        assert FCMConfig(stage_bits=(8, 16)).num_stages == 2

    def test_leaf_width_requires_derivation(self):
        with pytest.raises(ValueError):
            _ = FCMConfig().leaf_width


class TestMemoryDerivation:
    def test_widths_shrink_by_k(self):
        cfg = FCMConfig(k=8).with_memory(64 * 1024)
        w = cfg.stage_widths
        assert w[0] == 8 * w[1] == 64 * w[2]

    def test_memory_within_budget(self):
        for budget in (16 * 1024, 64 * 1024, 1 << 20):
            cfg = FCMConfig().with_memory(budget)
            assert cfg.memory_bytes <= budget
            # Sizing should not waste more than one leaf-granule.
            assert cfg.memory_bytes > budget * 0.8

    def test_memory_accounts_all_trees(self):
        one = FCMConfig(num_trees=1).with_memory(128 * 1024)
        two = FCMConfig(num_trees=2).with_memory(128 * 1024)
        assert two.leaf_width < one.leaf_width

    def test_rejects_tiny_budget(self):
        with pytest.raises(SketchMemoryError):
            FCMConfig(k=32).with_memory(16)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(SketchMemoryError):
            FCMConfig().with_memory(0)

    def test_describe_mentions_geometry(self):
        text = FCMConfig().with_memory(32 * 1024).describe()
        assert "k=8" in text and "8/16/32" in text

    def test_memory_bytes_zero_before_derivation(self):
        assert FCMConfig().memory_bytes == 0

    def test_higher_k_gives_more_leaves(self):
        """More arity => cheaper upper stages => more leaf counters."""
        k4 = FCMConfig(k=4).with_memory(256 * 1024)
        k16 = FCMConfig(k=16).with_memory(256 * 1024)
        assert k16.leaf_width > k4.leaf_width
