"""Tests for hierarchical pipeline tracing (repro.telemetry.tracing).

Covers the Span/Tracer primitives, the disabled-path no-op, stream
determinism (two seeded runs must export byte-identical span NDJSON)
and end-to-end trace reconstruction: one ``NetworkSketchCollector``
window must come back as a single connected tree spanning routing,
per-switch drains and EM iterations.
"""

import json

import pytest

from repro.controlplane import NetworkSketchCollector
from repro.network import NetworkSimulator, leaf_spine
from repro.telemetry import MemoryExporter, MetricsRegistry, NDJSONExporter
from repro.telemetry.tracing import (
    NULL_SPAN,
    build_trace_trees,
    maybe_span,
    read_spans,
    render_trace_tree,
)
from repro.traffic import zipf_trace


def _registry():
    return MetricsRegistry(exporter=MemoryExporter(), clock=lambda: 0.0)


# ----------------------------------------------------------------------
# Span / Tracer primitives
# ----------------------------------------------------------------------

class TestSpan:
    def test_root_span_exports_on_exit(self):
        registry = _registry()
        with registry.span("unit.work", items=3):
            pass
        spans = read_spans(registry.exporter.events)
        assert len(spans) == 1
        record = spans[0]
        assert record["name"] == "unit.work"
        assert record["trace_id"] == 0
        assert record["span_id"] == 0
        assert record["parent_id"] is None
        assert record["items"] == 3
        assert record["duration_s"] == 0.0

    def test_nesting_assigns_parent_and_shares_trace(self):
        registry = _registry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        inner, outer = read_spans(registry.exporter.events)
        assert inner["name"] == "inner"  # children close first
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == outer["trace_id"]

    def test_sibling_roots_get_distinct_trace_ids(self):
        registry = _registry()
        with registry.span("first"):
            pass
        with registry.span("second"):
            pass
        spans = read_spans(registry.exporter.events)
        assert [s["trace_id"] for s in spans] == [0, 1]
        assert [s["span_id"] for s in spans] == [0, 1]

    def test_annotate_accumulates_and_chains(self):
        registry = _registry()
        with registry.span("work", a=1) as span:
            span.annotate(b=2).annotate(c=3)
        (record,) = read_spans(registry.exporter.events)
        assert (record["a"], record["b"], record["c"]) == (1, 2, 3)

    @pytest.mark.parametrize("field", ["trace_id", "span_id",
                                       "parent_id", "duration_s"])
    def test_reserved_fields_rejected(self, field):
        registry = _registry()
        with pytest.raises(ValueError, match="reserved span fields"):
            registry.span("work", **{field: 1})
        with registry.span("work") as span:
            with pytest.raises(ValueError, match="reserved span fields"):
                span.annotate(**{field: 1})

    def test_exception_annotates_error_and_still_exports(self):
        registry = _registry()
        with pytest.raises(RuntimeError):
            with registry.span("doomed"):
                raise RuntimeError("boom")
        (record,) = read_spans(registry.exporter.events)
        assert record["error"] == "RuntimeError"
        assert registry.tracer.current is None  # stack unwound

    def test_spans_share_event_sequence_numbering(self):
        registry = _registry()
        registry.emit("k", "before")
        with registry.span("work"):
            pass
        registry.emit("k", "after")
        seqs = [e.seq for e in registry.exporter.events]
        assert seqs == [0, 1, 2]

    def test_span_duration_feeds_timer_histogram(self):
        ticks = iter([0.0, 2.5])
        registry = MetricsRegistry(exporter=MemoryExporter(),
                                   clock=lambda: next(ticks))
        with registry.span("work"):
            pass
        full = registry.snapshot()
        assert full["span.work"]["mean"] == pytest.approx(2.5)
        # Timer histograms carry wall-clock values, so the byte-stable
        # snapshot must exclude them.
        assert "span.work" not in registry.snapshot(include_timers=False)


class TestMaybeSpan:
    def test_disabled_path_returns_shared_null_span(self):
        span = maybe_span(None, "anything", x=1)
        assert span is NULL_SPAN
        with span as inner:
            assert inner.annotate(y=2) is span

    def test_enabled_path_returns_real_span(self):
        registry = _registry()
        with maybe_span(registry, "real", x=1):
            pass
        (record,) = read_spans(registry.exporter.events)
        assert record["name"] == "real" and record["x"] == 1


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------

class TestReconstruction:
    def test_build_trace_trees_orders_children_by_span_id(self):
        registry = _registry()
        with registry.span("root"):
            with registry.span("a"):
                pass
            with registry.span("b"):
                pass
        trees = build_trace_trees(read_spans(registry.exporter.events))
        (roots,) = trees.values()
        assert [c.name for c in roots[0].children] == ["a", "b"]

    def test_render_trace_tree_indents_and_annotates(self):
        registry = _registry()
        with registry.span("root", window=7):
            with registry.span("leaf"):
                pass
        trees = build_trace_trees(read_spans(registry.exporter.events))
        text = render_trace_tree(list(trees.values())[0],
                                 annotation_keys=["window"])
        lines = text.splitlines()
        assert lines[0].startswith("root ") and "window=7" in lines[0]
        assert lines[1].startswith("  leaf ")


# ----------------------------------------------------------------------
# end-to-end: one window, one connected trace, byte-identical runs
# ----------------------------------------------------------------------

def _run_traced_window(path: str):
    with NDJSONExporter(path) as exporter:
        registry = MetricsRegistry(exporter=exporter, clock=lambda: 0.0)
        trace = zipf_trace(20_000, alpha=1.3, seed=5)
        sim = NetworkSimulator(leaf_spine(num_leaves=4, num_spines=2),
                               memory_bytes=48 * 1024, seed=1,
                               telemetry=registry)
        collector = NetworkSketchCollector(sim, run_em=True,
                                           telemetry=registry)
        collector.process(trace, 1)


def test_one_window_reconstructs_one_connected_trace(tmp_path):
    path = tmp_path / "spans.ndjson"
    _run_traced_window(str(path))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    spans = read_spans(records)
    trees = build_trace_trees(spans)
    assert len(trees) == 1, "one window must form exactly one trace"
    (roots,) = trees.values()
    assert len(roots) == 1
    root = roots[0]
    assert root.name == "collector.window"
    child_names = [c.name for c in root.children]
    assert child_names[0] == "network.route"
    assert child_names.count("collector.drain") == 6  # 4 leaves + 2 spines
    assert child_names[-1] == "em.run"
    em_run = root.children[-1]
    assert em_run.children, "em.run must contain em.iteration children"
    assert {c.name for c in em_run.children} == {"em.iteration"}
    # every drain carries its outcome annotation
    for child in root.children:
        if child.name == "collector.drain":
            assert child.record["outcome"] == "ok"
            assert child.record["breaker_open"] is False


def test_span_stream_is_byte_identical_across_runs(tmp_path):
    first, second = tmp_path / "a.ndjson", tmp_path / "b.ndjson"
    _run_traced_window(str(first))
    _run_traced_window(str(second))
    assert first.read_bytes() == second.read_bytes()
    assert first.stat().st_size > 0
