"""Tests for the consolidated benchmark report and result records."""

import json
import os

import pytest

from benchmarks import report
from benchmarks.common import _fmt, _to_jsonable, print_table, save_results


class TestJsonSerialization:
    def test_numpy_types_converted(self):
        import numpy as np

        payload = {
            "i": np.int64(3),
            "f": np.float64(1.5),
            "a": np.arange(3),
            "nested": {"t": (np.int32(1), 2)},
        }
        out = _to_jsonable(payload)
        assert out == {"i": 3, "f": 1.5, "a": [0, 1, 2],
                       "nested": {"t": [1, 2]}}
        json.dumps(out)  # round-trips

    def test_save_results_writes_file(self, tmp_path, monkeypatch):
        import benchmarks.common as common

        monkeypatch.setattr(common, "RESULTS_DIR", str(tmp_path))
        path = save_results("unit_test", {"x": 1})
        assert os.path.exists(path)
        with open(path) as fh:
            assert json.load(fh) == {"x": 1}


class TestTableFormatting:
    def test_fmt_floats(self):
        assert _fmt(0.0) == "0"
        assert _fmt(0.12345) == "0.1235"
        assert "e" in _fmt(1e-6)
        assert "e" in _fmt(123456.0)

    def test_fmt_passthrough(self):
        assert _fmt("abc") == "abc"
        assert _fmt(7) == "7"

    def test_print_table_alignment(self, capsys):
        print_table("T", ["a", "bb"], [[1, 2.5], [300, 4]])
        out = capsys.readouterr().out
        assert "=== T ===" in out
        assert "300" in out


class TestReportModule:
    def test_headline_functions_tolerate_missing_keys(self):
        # A malformed record must not crash the report.
        assert report._headline("fig06_dataplane_queries", {}) \
            == "recorded"

    def test_report_runs_against_real_results(self, capsys):
        if not os.path.isdir(report.RESULTS_DIR):
            pytest.skip("no results recorded yet")
        code = report.main()
        out = capsys.readouterr().out
        assert "benchmark report" in out
        assert code == 0

    def test_report_handles_missing_dir(self, monkeypatch, tmp_path,
                                         capsys):
        monkeypatch.setattr(report, "RESULTS_DIR",
                            str(tmp_path / "nope"))
        assert report.main() == 1
