"""Tests for the sketch base classes, budget helper and misc glue."""

import numpy as np
import pytest

from repro.errors import SketchMemoryError
from repro.sketches.base import (
    CardinalitySketch,
    FrequencySketch,
    counters_for_budget,
)


class _DictSketch(FrequencySketch):
    """Minimal exact sketch for exercising the base-class defaults."""

    def __init__(self):
        self.counts = {}

    def update(self, key, count=1):
        self.counts[key] = self.counts.get(key, 0) + count

    def query(self, key):
        return self.counts.get(key, 0)

    @property
    def memory_bytes(self):
        return 0


class _SetCardinality(CardinalitySketch):
    def __init__(self):
        self.seen = set()

    def update(self, key):
        self.seen.add(key)

    def cardinality(self):
        return float(len(self.seen))

    @property
    def memory_bytes(self):
        return 0


class TestCountersForBudget:
    def test_basic_division(self):
        assert counters_for_budget(100, 4) == 25

    def test_fractional_counter_size(self):
        assert counters_for_budget(10, 0.5) == 20

    def test_minimum_enforced(self):
        with pytest.raises(SketchMemoryError):
            counters_for_budget(10, 4, minimum=5)

    def test_nonpositive_budget(self):
        with pytest.raises(SketchMemoryError):
            counters_for_budget(0, 4)


class TestFrequencyDefaults:
    def test_default_ingest_loops(self):
        sketch = _DictSketch()
        sketch.ingest(np.array([1, 1, 2], dtype=np.uint64))
        assert sketch.query(1) == 2 and sketch.query(2) == 1

    def test_default_query_many(self):
        sketch = _DictSketch()
        sketch.update(5, 3)
        assert sketch.query_many([5, 6]).tolist() == [3, 0]

    def test_default_heavy_hitters(self):
        sketch = _DictSketch()
        sketch.update(1, 100)
        sketch.update(2, 5)
        assert sketch.heavy_hitters([1, 2], 50) == {1}
        with pytest.raises(ValueError):
            sketch.heavy_hitters([1], 0)

    def test_default_ingest_weighted(self):
        sketch = _DictSketch()
        sketch.ingest_weighted(np.array([1, 2, 1], dtype=np.uint64),
                               np.array([10, 20, 30]))
        assert sketch.query(1) == 40 and sketch.query(2) == 20

    def test_ingest_weighted_validation(self):
        sketch = _DictSketch()
        with pytest.raises(ValueError):
            sketch.ingest_weighted(np.array([1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            sketch.ingest_weighted(np.array([1]), np.array([-5]))


class TestCardinalityDefaults:
    def test_default_ingest(self):
        sketch = _SetCardinality()
        sketch.ingest(np.array([1, 1, 2, 3], dtype=np.uint64))
        assert sketch.cardinality() == 3.0


class TestPackageSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_sketches_dir(self):
        import repro.sketches as sk

        listing = dir(sk)
        assert "CountMinSketch" in listing
        assert "ColdFilterSketch" in listing

    def test_sketches_unknown_attribute(self):
        import repro.sketches as sk

        with pytest.raises(AttributeError):
            _ = sk.NoSuchSketch

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestDoctests:
    def test_selected_module_doctests(self):
        import doctest

        import repro.experiments
        import repro.hashing.family
        import repro.traffic.flow

        for module in (repro.traffic.flow, repro.experiments,
                       repro.hashing.family):
            failures, _ = doctest.testmod(module)
            assert failures == 0, module.__name__
