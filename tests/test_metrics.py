"""Tests for the evaluation metrics (§7.2, Table 2)."""

import numpy as np
import pytest

from repro.metrics import (
    average_absolute_error,
    average_relative_error,
    f1_score,
    flow_size_errors,
    precision_recall,
    relative_error,
    weighted_mean_relative_error,
)


class TestARE:
    def test_perfect_estimate(self):
        assert average_relative_error([10, 20], [10, 20]) == 0.0

    def test_known_value(self):
        # |15-10|/10 = 0.5 and |20-20|/20 = 0 -> mean 0.25
        assert average_relative_error([10, 20], [15, 20]) == pytest.approx(0.25)

    def test_symmetric_in_error_sign(self):
        over = average_relative_error([10], [15])
        under = average_relative_error([10], [5])
        assert over == under

    def test_rejects_zero_truth(self):
        with pytest.raises(ValueError):
            average_relative_error([0], [1])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            average_relative_error([1, 2], [1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            average_relative_error([], [])


class TestAAE:
    def test_known_value(self):
        assert average_absolute_error([10, 20], [12, 26]) == pytest.approx(4.0)

    def test_zero_truth_allowed(self):
        assert average_absolute_error([0], [3]) == 3.0


class TestRelativeError:
    def test_known_value(self):
        assert relative_error(100, 90) == pytest.approx(0.1)

    def test_rejects_zero_truth(self):
        with pytest.raises(ValueError):
            relative_error(0, 5)

    def test_zero_truth_zero_estimate_is_perfect(self):
        # A perfect estimate of zero has zero error; only a *wrong*
        # estimate against a zero truth is undefined.
        assert relative_error(0, 0) == 0.0

    def test_zero_truth_error_names_the_estimate(self):
        with pytest.raises(ValueError, match="estimate was 5"):
            relative_error(0, 5)

    def test_negative_truth_uses_magnitude(self):
        assert relative_error(-10, -9) == pytest.approx(0.1)


class TestF1:
    def test_perfect(self):
        assert f1_score({1, 2}, {1, 2}) == 1.0

    def test_half_precision(self):
        pr = precision_recall({1, 2}, {1})
        assert pr.precision == 0.5 and pr.recall == 1.0
        assert pr.f1 == pytest.approx(2 / 3)

    def test_empty_report_empty_truth(self):
        assert f1_score(set(), set()) == 1.0

    def test_empty_report_nonempty_truth(self):
        pr = precision_recall(set(), {1})
        assert pr.precision == 1.0 and pr.recall == 0.0
        assert pr.f1 == 0.0

    def test_disjoint(self):
        assert f1_score({1}, {2}) == 0.0

    def test_nonempty_report_empty_truth(self):
        # Every claim is false, nothing was missed.
        pr = precision_recall({1, 2}, set())
        assert pr.precision == 0.0 and pr.recall == 1.0
        assert pr.f1 == 0.0


class TestWMRE:
    def test_identical_distributions(self):
        assert weighted_mean_relative_error({1: 5, 2: 3}, {1: 5, 2: 3}) == 0.0

    def test_known_value(self):
        # |5-3| / ((5+3)/2) = 2/4 = 0.5
        assert weighted_mean_relative_error({1: 5}, {1: 3}) == pytest.approx(0.5)

    def test_accepts_arrays(self):
        a = np.array([0.0, 5.0])
        b = np.array([0.0, 3.0, 0.0])
        assert weighted_mean_relative_error(a, b) == pytest.approx(0.5)

    def test_disjoint_supports_max_error(self):
        # Completely disjoint distributions give WMRE = 2.
        assert weighted_mean_relative_error({1: 4}, {2: 4}) == pytest.approx(2.0)

    def test_empty_distributions(self):
        assert weighted_mean_relative_error({}, {}) == 0.0

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            weighted_mean_relative_error({-1: 3}, {1: 3})

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            weighted_mean_relative_error({1: -3}, {1: 3})
        with pytest.raises(ValueError):
            weighted_mean_relative_error(
                np.array([1.0]), np.array([-1.0]))

    def test_zero_count_truth_bin_penalises_phantom_mass(self):
        # Truth has no flows of size 2; the estimate invents 4 of
        # them.  |0-4| / ((4+4)/2) over both bins: num = 0 + 4,
        # denom = (4+4)/2 + (0+4)/2 = 6 -> 2/3.
        wmre = weighted_mean_relative_error({1: 4, 2: 0}, {1: 4, 2: 4})
        assert wmre == pytest.approx(2 / 3)

    def test_one_empty_distribution_is_max_error(self):
        assert weighted_mean_relative_error({1: 4}, {}) == pytest.approx(2.0)


class TestFlowSizeErrors:
    class _Exact:
        def __init__(self, mapping):
            self.mapping = mapping

        def query(self, key):
            return self.mapping[key]

    def test_scalar_query_path(self):
        est = self._Exact({1: 10, 2: 22})
        are, aae = flow_size_errors([1, 2], [10, 20], est)
        assert are == pytest.approx(0.05)
        assert aae == pytest.approx(1.0)

    class _Vectorized:
        def query_many(self, keys):
            return np.asarray(keys, dtype=np.float64) * 2

    def test_vectorized_path(self):
        are, aae = flow_size_errors([1, 2], [2, 4], self._Vectorized())
        assert are == 0.0 and aae == 0.0
