"""Tests for the analytic error bounds (§5, Appendix B)."""

import numpy as np
import pytest

from repro.analysis import (
    cm_error_bound,
    eta,
    fcm_error_bound,
    fcm_general_error_bound,
    fcm_topk_error_bound,
    recommended_parameters,
)
from repro.core import FCMSketch
from repro.core.virtual import convert_sketch
from repro.traffic import caida_like_trace


class TestEta:
    """Appendix B's worked values for a binary tree:
    eta_1 = 0, eta_2 = theta1, eta_3 = 2*theta1 + theta2,
    eta_4 = 3*theta1 + theta2, eta_5 = 4*theta1 + 2*theta2 + theta3."""

    THETAS = [2, 14, 254]

    def test_eta_values_binary(self):
        t1, t2, t3 = self.THETAS
        assert eta(1, 2, self.THETAS) == 0
        assert eta(2, 2, self.THETAS) == t1
        assert eta(3, 2, self.THETAS) == 2 * t1 + t2
        assert eta(4, 2, self.THETAS) == 3 * t1 + t2
        assert eta(5, 2, self.THETAS) == 4 * t1 + 2 * t2 + t3

    def test_eta_monotone_in_degree(self):
        values = [eta(xi, 4, [254, 65534, 2**32 - 2])
                  for xi in range(1, 20)]
        assert values == sorted(values)

    def test_eta_lower_bound_lemma(self):
        """The proof of Thm 5.1 uses eta_xi >= (xi-1) * theta_1."""
        for k in (2, 4, 8):
            for xi in range(1, 30):
                assert eta(xi, k, self.THETAS) >= (xi - 1) * self.THETAS[0]

    def test_eta_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            eta(0, 2, self.THETAS)


class TestBoundFormulas:
    def test_cm_bound(self):
        assert cm_error_bound(1000, 100) == pytest.approx(
            np.e / 100 * 1000
        )

    def test_fcm_matches_cm_below_capacity(self):
        """Theorem 5.1: below w1*theta1 packets the FCM bound takes the
        exact CM form."""
        w1, theta1 = 1024, 254
        packets = w1 * theta1 / 2
        assert fcm_error_bound(packets, w1, theta1, max_degree=5) == \
            pytest.approx(cm_error_bound(packets, w1))

    def test_fcm_degree_term_activates(self):
        w1, theta1 = 64, 2
        packets = w1 * theta1 * 10
        low = fcm_error_bound(packets, w1, theta1, max_degree=1)
        high = fcm_error_bound(packets, w1, theta1, max_degree=4)
        assert high > low

    def test_general_bound_at_least_simple_when_capped(self):
        """Lemma B.1's bound is tighter (<=) than Theorem 5.1's
        relaxation."""
        w1, k, thetas = 256, 8, [254, 65534, 2**32 - 2]
        packets = 1e6
        general = fcm_general_error_bound(packets, w1, k, thetas,
                                          max_degree=6)
        simple = fcm_error_bound(packets, w1, thetas[0], max_degree=6)
        assert general <= simple + 1e-6

    def test_topk_bound_uses_residual(self):
        full = fcm_topk_error_bound(10_000, 256, 254, 3)
        filtered = fcm_topk_error_bound(2_000, 256, 254, 3)
        assert filtered < full

    def test_recommended_parameters(self):
        w1, d = recommended_parameters(epsilon=0.01, delta=0.05)
        assert w1 == int(np.ceil(np.e / 0.01))
        assert d == 3
        with pytest.raises(ValueError):
            recommended_parameters(0, 0.1)


class TestEmpiricalBound:
    def test_errors_within_bound(self):
        """Observed per-flow errors should respect Theorem 5.1 for the
        overwhelming majority of flows (probability >= 1 - e^-d)."""
        trace = caida_like_trace(num_packets=50_000, seed=17)
        sketch = FCMSketch.with_memory(16 * 1024, seed=5)
        sketch.ingest(trace.keys)
        gt = trace.ground_truth
        errors = sketch.query_many(gt.keys_array()) - gt.sizes_array()
        max_degree = max(a.max_degree for a in convert_sketch(sketch))
        bound = fcm_error_bound(
            len(trace), sketch.config.leaf_width,
            sketch.config.counting_ranges[0], max_degree
        )
        violating = float(np.mean(errors > bound))
        assert violating <= np.exp(-sketch.num_trees) + 0.01
