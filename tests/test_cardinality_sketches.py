"""Tests for Linear Counting and HyperLogLog."""

import math

import numpy as np
import pytest

from repro.sketches import HyperLogLog, LinearCounting
from repro.sketches.linear_counting import linear_counting_estimate


class TestLinearCountingEstimate:
    def test_empty_bitmap(self):
        assert linear_counting_estimate(100, 100) == 0.0

    def test_formula(self):
        w, w0 = 1000, 500
        assert linear_counting_estimate(w0, w) == pytest.approx(
            -w * math.log(w0 / w)
        )

    def test_saturated_bitmap_finite(self):
        value = linear_counting_estimate(0, 64)
        assert value == pytest.approx(64 * math.log(64))

    def test_fractional_empty_cells(self):
        # Multi-tree averaging passes fractional occupancy.
        a = linear_counting_estimate(10.5, 100)
        assert (linear_counting_estimate(11, 100) < a
                < linear_counting_estimate(10, 100))

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_counting_estimate(5, 0)
        with pytest.raises(ValueError):
            linear_counting_estimate(-1, 10)
        with pytest.raises(ValueError):
            linear_counting_estimate(11, 10)


class TestLinearCountingSketch:
    def test_estimates_cardinality(self):
        lc = LinearCounting(4 * 1024)  # 32768 cells
        lc.ingest(np.arange(3000, dtype=np.uint64))
        assert lc.cardinality() == pytest.approx(3000, rel=0.05)

    def test_duplicates_ignored(self):
        lc = LinearCounting(1024)
        lc.ingest(np.tile(np.arange(100, dtype=np.uint64), 20))
        assert lc.cardinality() == pytest.approx(100, rel=0.2)

    def test_scalar_update_matches_ingest(self):
        a = LinearCounting(512, seed=1)
        b = LinearCounting(512, seed=1)
        keys = np.arange(200, dtype=np.uint64)
        for k in keys:
            a.update(int(k))
        b.ingest(keys)
        assert a.empty_cells == b.empty_cells

    def test_empty(self):
        assert LinearCounting(128).cardinality() == 0.0


class TestHyperLogLog:
    def test_estimates_large_cardinality(self):
        hll = HyperLogLog(2048)
        hll.ingest(np.arange(50_000, dtype=np.uint64))
        assert hll.cardinality() == pytest.approx(50_000, rel=0.1)

    def test_small_range_correction(self):
        hll = HyperLogLog(1024)
        hll.ingest(np.arange(30, dtype=np.uint64))
        assert hll.cardinality() == pytest.approx(30, rel=0.25)

    def test_duplicates_ignored(self):
        hll = HyperLogLog(1024)
        hll.ingest(np.tile(np.arange(1000, dtype=np.uint64), 10))
        assert hll.cardinality() == pytest.approx(1000, rel=0.15)

    def test_scalar_matches_ingest(self):
        a = HyperLogLog(256, seed=2)
        b = HyperLogLog(256, seed=2)
        keys = np.arange(5000, dtype=np.uint64)
        for k in keys:
            a.update(int(k))
        b.ingest(keys)
        assert np.array_equal(a.registers, b.registers)

    def test_register_count_power_of_two(self):
        hll = HyperLogLog(1000)
        assert hll.num_registers == 512
        assert hll.memory_bytes == 512

    def test_monotone_in_stream(self):
        hll = HyperLogLog(1024)
        hll.ingest(np.arange(1000, dtype=np.uint64))
        first = hll.cardinality()
        hll.ingest(np.arange(1000, 5000, dtype=np.uint64))
        assert hll.cardinality() > first
