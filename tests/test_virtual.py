"""Tests for the virtual-counter conversion (§4.1), including the
paper's Figure 5 worked example."""

import numpy as np
import pytest

from repro.core import FCMConfig, FCMSketch
from repro.core.tree import FCMTree
from repro.core.virtual import VirtualCounterArray, convert_sketch
from repro.hashing import HashFamily
from repro.traffic import caida_like_trace


def figure5_tree() -> FCMTree:
    """The Figure 5 tree state (same as Figure 4b)."""
    cfg = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                    stage_widths=(4, 2, 1))
    tree = FCMTree(cfg, HashFamily(0))
    # Stage values [3,0,2,3] / [15,4] / [9] — see test_fcm_tree.
    tree.ingest_totals(np.array([25, 0, 2, 6]))
    return tree


class TestFigure5Example:
    def test_conversion_matches_paper(self):
        array = VirtualCounterArray.from_tree(figure5_tree())
        counters = {(vc.value, vc.degree) for vc in array}
        # V^1_1 = 25 (degree 1, path leaf0 -> C2,0 -> C3,0)
        # V^2_1 = 2 + 2 + 4 = 8? -- paper example has leaf2 = 3
        # (overflowed); in our Figure-4b state leaf2 = 2, not
        # overflowed, so it forms its own degree-1 counter of value 2
        # and leaf 3's path ends at C2,1 with value 2 + 4 = 6.
        assert (25, 1) in counters
        assert (2, 1) in counters
        assert (6, 1) in counters
        # The empty leaf (value 0, degree 1) is kept as a count.
        assert array.num_empty_leaves == 1

    def test_paper_degree2_merge(self):
        """The exact Figure 5 state: leaves 2 and 3 both overflow and
        share C2,1, merging into a degree-2 counter of value 9."""
        cfg = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                        stage_widths=(4, 2, 1))
        tree = FCMTree(cfg, HashFamily(0))
        # Figure 5: stage 1 = [3,0,3,3], stage 2 = [15,5], stage 3 = [9].
        # Leaf 2 carries 2, leaf 3 carries 3 -> C2,1 = 5 (no overflow).
        tree.ingest_totals(np.array([25, 0, 4, 5]))
        assert tree.stage_values[0].tolist() == [3, 0, 3, 3]
        assert tree.stage_values[1].tolist() == [15, 5]
        array = VirtualCounterArray.from_tree(tree)
        merged = [vc for vc in array if vc.degree == 2]
        assert len(merged) == 1
        # value = theta1 + theta1 + 5 = 2 + 2 + 5 = 9, as in the paper.
        assert merged[0].value == 9
        assert merged[0].stage == 2

    def test_total_count_preserved(self):
        array = VirtualCounterArray.from_tree(figure5_tree())
        assert array.total_value == 25 + 2 + 6


class TestConversionProperties:
    @pytest.fixture(scope="class")
    def trace_arrays(self):
        trace = caida_like_trace(num_packets=80_000, seed=9)
        sketch = FCMSketch.with_memory(16 * 1024, seed=2)
        sketch.ingest(trace.keys)
        return trace, sketch, convert_sketch(sketch)

    def test_one_array_per_tree(self, trace_arrays):
        _, sketch, arrays = trace_arrays
        assert len(arrays) == sketch.num_trees

    def test_totals_preserved_per_tree(self, trace_arrays):
        trace, _, arrays = trace_arrays
        for array in arrays:
            assert array.total_value == len(trace)

    def test_counters_plus_empties_cover_leaves(self, trace_arrays):
        """Every leaf is in exactly one virtual counter (or empty)."""
        _, _, arrays = trace_arrays
        for array in arrays:
            covered = int(array.degrees.sum()) + array.num_empty_leaves
            assert covered == array.leaf_width

    def test_values_positive(self, trace_arrays):
        _, _, arrays = trace_arrays
        for array in arrays:
            assert np.all(array.values > 0)
            assert np.all(array.degrees >= 1)

    def test_degree_histogram_sums(self, trace_arrays):
        _, _, arrays = trace_arrays
        hist = arrays[0].degree_histogram()
        assert sum(hist.values()) == len(arrays[0])

    def test_degree_histogram_skewed(self, trace_arrays):
        """Figure 8's shape: counter population decays with degree."""
        _, _, arrays = trace_arrays
        hist = arrays[0].degree_histogram()
        assert hist.get(1, 0) > hist.get(2, 0) >= hist.get(3, 0)

    def test_min_path_count(self, trace_arrays):
        _, _, arrays = trace_arrays
        array = arrays[0]
        assert array.min_path_count(1) == 1
        assert array.min_path_count(2) == array.thetas[0] + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualCounterArray(np.array([1]), np.array([1, 2]),
                                np.array([1]), 4, [2], 0)

    def test_single_stage_tree(self):
        cfg = FCMConfig(num_trees=1, k=2, stage_bits=(8,),
                        stage_widths=(8,))
        tree = FCMTree(cfg, HashFamily(0))
        tree.ingest_totals(np.array([3, 0, 0, 0, 1, 0, 0, 0]))
        array = VirtualCounterArray.from_tree(tree)
        assert sorted(array.values.tolist()) == [1, 3]
        assert array.num_empty_leaves == 6
