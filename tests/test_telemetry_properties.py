"""Property tests: telemetry aggregates vs independent recomputation.

Two families of properties:

* :class:`~repro.telemetry.registry.Histogram` / ``Timer`` running
  aggregates must match a numpy recomputation over the same samples —
  the aggregates are maintained incrementally (count/sum/min/max plus
  Welford's running mean/M2 for the variance) and any drift would
  silently corrupt every published summary.  Welford earns its keep on
  adversarial streams (huge mean, tiny spread) where the naive
  sum-of-squares formula catastrophically cancels; those get their own
  test.
* The per-stage overflow counters the telemetry layer publishes
  (:meth:`FCMTree.overflow_counts`) must equal an independent
  simulation of the carry cascade run directly from the leaf totals,
  with leaf totals drawn around the ``2^b - 1`` sentinel boundaries
  where off-by-one bugs live.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FCMSketch
from repro.telemetry.registry import Histogram, MetricsRegistry, Timer

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)


@given(st.lists(finite_floats, min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_histogram_aggregates_match_numpy(samples):
    hist = Histogram("h")
    for value in samples:
        hist.observe(value)
    arr = np.asarray(samples, dtype=np.float64)
    assert hist.count == arr.shape[0]
    assert hist.total == pytest.approx(float(arr.sum()), rel=1e-9,
                                       abs=1e-6)
    assert hist.min == float(arr.min())
    assert hist.max == float(arr.max())
    assert hist.mean == pytest.approx(float(arr.mean()), rel=1e-9,
                                      abs=1e-6)
    # Welford's single-pass variance tracks numpy's two-pass result
    # closely even without seeing the data twice.
    scale = max(1.0, float(np.abs(arr).max()) ** 2)
    assert hist.std == pytest.approx(float(arr.std()),
                                     rel=1e-4, abs=1e-5 * scale)


@given(
    mean=st.floats(min_value=1e6, max_value=1e12,
                   allow_nan=False, allow_infinity=False),
    spread=st.floats(min_value=0.0, max_value=1.0,
                     allow_nan=False, allow_infinity=False),
    offsets=st.lists(st.floats(min_value=-1.0, max_value=1.0,
                               allow_nan=False, allow_infinity=False),
                     min_size=2, max_size=100),
)
@settings(max_examples=100, deadline=None)
def test_welford_survives_large_mean_tiny_variance(mean, spread, offsets):
    """The adversarial regime for running variance: samples like
    ``1e12 + epsilon``.  A sum-of-squares implementation cancels
    catastrophically here (often returning negative variance before
    clamping); Welford must stay near numpy's two-pass answer and never
    go negative."""
    samples = [mean + offset * spread for offset in offsets]
    hist = Histogram("h")
    for value in samples:
        hist.observe(value)
    arr = np.asarray(samples, dtype=np.float64)
    assert hist.variance >= 0.0
    assert hist.std >= 0.0
    expected = float(arr.var())
    # Single-pass updates round each delta at the mean's float spacing,
    # so that is the achievable accuracy floor: ~n * spread * ulp(mean).
    # A sum-of-squares implementation would be off by ~mean^2 * eps
    # (1e8 at mean 1e12) — ten orders of magnitude past this bound.
    floor = len(samples) * (spread + 1.0) * float(np.spacing(mean))
    assert hist.variance == pytest.approx(expected, rel=1e-6,
                                          abs=max(1e-9, floor))


def test_welford_constant_stream_has_zero_variance():
    hist = Histogram("h")
    for _ in range(1000):
        hist.observe(1e12 + 0.25)
    assert hist.variance == 0.0
    assert hist.std == 0.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_timer_totals_match_sum_of_durations(durations):
    # Drive the injectable clock: each context entry/exit consumes two
    # ticks whose difference is the requested duration.
    ticks = []
    now = 0.0
    for duration in durations:
        ticks.extend([now, now + duration])
        now += duration + 1.0
    clock_ticks = iter(ticks)
    registry = MetricsRegistry(clock=lambda: next(clock_ticks))
    for _ in durations:
        with registry.timer("op"):
            pass
    hist = registry.histogram("op")
    arr = np.asarray(durations, dtype=np.float64)
    assert hist.count == arr.shape[0]
    assert hist.total == pytest.approx(float(arr.sum()), rel=1e-9,
                                       abs=1e-6)
    assert hist.max == pytest.approx(float(arr.max()))


def _expected_overflows(leaf_totals, thetas, sentinels, k):
    """Simulate the carry cascade independently of FCMTree.

    An interior node overflows (stores its sentinel) iff its routed
    total exceeds theta; the last stage saturates at its sentinel.
    """
    expected = []
    totals = np.asarray(leaf_totals, dtype=np.int64)
    last = len(thetas) - 1
    for stage, (theta, sentinel) in enumerate(zip(thetas, sentinels)):
        if stage == last:
            expected.append(int(np.count_nonzero(totals >= sentinel)))
            break
        expected.append(int(np.count_nonzero(totals > theta)))
        totals = np.maximum(totals - theta, 0).reshape(-1, k).sum(axis=1)
    return expected


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_overflow_counters_match_independent_recount(data):
    sketch = FCMSketch.with_memory(4 * 1024, num_trees=1, k=2, seed=0)
    tree = sketch.trees[0]
    theta1 = tree.thetas[0]
    # Cluster totals around the stage-1 sentinel boundary, with some
    # large enough to stress stage 2 after k-way carry aggregation.
    total = st.one_of(
        st.integers(min_value=0, max_value=theta1 + 2),
        st.integers(min_value=theta1 - 2, max_value=4 * theta1),
        st.just(0),
    )
    count = data.draw(st.integers(min_value=1,
                                  max_value=min(64, tree.leaf_width)))
    values = data.draw(st.lists(total, min_size=count, max_size=count))
    totals = np.zeros(tree.leaf_width, dtype=np.int64)
    totals[:count] = values
    tree.ingest_totals(totals)

    assert tree.overflow_counts() == _expected_overflows(
        totals, tree.thetas, tree.sentinels, tree.k
    )


@given(st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=64))
@settings(max_examples=60, deadline=None)
def test_emit_state_gauges_match_snapshot(values):
    registry = MetricsRegistry()
    sketch = FCMSketch.with_memory(4 * 1024, num_trees=1, k=2, seed=0,
                                   telemetry=registry)
    tree = sketch.trees[0]
    totals = np.zeros(tree.leaf_width, dtype=np.int64)
    totals[: len(values)] = values
    tree.ingest_totals(totals)

    state = sketch.emit_state()
    snap = registry.snapshot()
    for s, (occ, ovf) in enumerate(zip(state["trees"][0]["occupancy"],
                                       state["trees"][0]["overflows"])):
        assert snap[f"fcm.tree0.stage{s + 1}.occupancy"] == occ
        assert snap[f"fcm.tree0.stage{s + 1}.overflows"] == ovf
    assert snap["fcm.tree0.empty_leaves"] == \
        int(np.count_nonzero(totals == 0))
