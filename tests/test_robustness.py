"""Unit tests for the robustness layer: errors, policies, fault plans,
EM guards, and degenerate collector inputs."""

import zlib

import numpy as np
import pytest

from repro import FCMSketch
from repro.controlplane import SketchCollector
from repro.core.em import EMEstimator
from repro.core.virtual import convert_sketch
from repro.errors import (
    CollectionTimeoutError,
    EMDivergenceError,
    FaultPlanError,
    InvalidWindowError,
    MeasurementError,
    SketchMemoryError,
    SwitchUnreachableError,
    TopologyError,
)
from repro.network import SimulatedSwitch, switch_seed
from repro.robustness import (
    CircuitBreaker,
    CollectionHealth,
    CollectionPolicy,
    DegradationLevel,
    EMGuardConfig,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    guarded_em_run,
    guarded_estimate_distribution,
    stable_digest,
)
from repro.traffic import Trace, zipf_trace


class TestErrorHierarchy:
    def test_everything_is_a_measurement_error(self):
        for exc in (SketchMemoryError("x"), TopologyError("x"),
                    InvalidWindowError("x"), FaultPlanError("x"),
                    SwitchUnreachableError("s"),
                    CollectionTimeoutError("s", 2.0, 1.0),
                    EMDivergenceError(3, "nan")):
            assert isinstance(exc, MeasurementError)

    def test_validation_errors_stay_value_errors(self):
        # Pre-existing call sites catch ValueError; keep that working.
        for exc_type in (SketchMemoryError, TopologyError,
                         InvalidWindowError, FaultPlanError):
            assert issubclass(exc_type, ValueError)

    def test_fault_errors_carry_context(self):
        err = CollectionTimeoutError("leaf0", 5.0, 1.0)
        assert err.switch == "leaf0"
        assert err.elapsed == 5.0 and err.timeout == 1.0
        assert "leaf0" in str(err)


class TestStableSeeds:
    def test_switch_seed_is_crc32(self):
        assert switch_seed("leaf0") == zlib.crc32(b"leaf0") % (1 << 31)

    def test_default_sketch_uses_stable_seed(self):
        switch = SimulatedSwitch("spine1", memory_bytes=16 * 1024)
        assert switch.sketch.config.seed == switch_seed("spine1")

    def test_distinct_switches_get_distinct_seeds(self):
        names = [f"leaf{i}" for i in range(8)] + [f"spine{i}" for i in range(4)]
        seeds = {switch_seed(n) for n in names}
        assert len(seeds) == len(names)

    def test_stable_digest_mixes_context(self):
        assert stable_digest("a", 1) != stable_digest("a", 2)
        assert stable_digest("a", 1) == stable_digest("a", 1)


class TestSwitchLiveness:
    def test_dead_switch_refuses_queries(self):
        switch = SimulatedSwitch("leaf0", memory_bytes=16 * 1024)
        switch.forward(np.array([1, 2, 3], dtype=np.uint64))
        switch.fail()
        with pytest.raises(SwitchUnreachableError):
            switch.flow_size(1)
        with pytest.raises(SwitchUnreachableError):
            switch.forward(np.array([4], dtype=np.uint64))
        switch.recover()
        assert switch.flow_size(1) >= 1  # state survived the outage

    def test_rotate_returns_window_sketch(self):
        switch = SimulatedSwitch("leaf0", memory_bytes=16 * 1024)
        switch.forward(np.array([7, 7, 7], dtype=np.uint64))
        drained = switch.rotate()
        assert drained.query(7) >= 3
        assert switch.sketch.query(7) == 0
        assert switch.sketch.config.seed == drained.config.seed

    def test_rotate_without_factory_raises(self):
        custom = FCMSketch.with_memory(8 * 1024)
        switch = SimulatedSwitch("leaf0", sketch=custom)
        with pytest.raises(SwitchUnreachableError):
            switch.rotate()


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, factor=2.0,
                             max_delay=0.3)
        assert list(policy.backoffs()) == [0.0, 0.1, 0.2, 0.3]
        assert policy.total_backoff == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultPlanError):
            RetryPolicy(factor=0.5)
        with pytest.raises(FaultPlanError):
            CollectionPolicy(timeout=0)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_cools_down(self):
        breaker = CircuitBreaker(threshold=2, cooldown=3)
        assert breaker.allows("s", 0)
        breaker.record_failure("s", 0)
        assert breaker.allows("s", 1)
        breaker.record_failure("s", 1)
        # Open: skip windows 2..4, probe again at 5.
        for window in (2, 3, 4):
            assert not breaker.allows("s", window)
        assert breaker.allows("s", 5)

    def test_success_closes(self):
        breaker = CircuitBreaker(threshold=2, cooldown=2)
        breaker.record_failure("s", 0)
        breaker.record_success("s")
        breaker.record_failure("s", 1)
        assert breaker.allows("s", 2)  # streak was reset

    def test_disabled_breaker_always_allows(self):
        breaker = CircuitBreaker(threshold=0, cooldown=5)
        for window in range(5):
            breaker.record_failure("s", window)
            assert breaker.allows("s", window + 1)


class TestCollectionHealth:
    def test_fresh_is_healthy_and_full(self):
        health = CollectionHealth.fresh(0, ["a", "b"])
        assert health.healthy
        assert health.degradation is DegradationLevel.FULL

    def test_degradation_from_coverage(self):
        health = CollectionHealth(window_index=0, switches_total=4,
                                  switches_reached=["a"],
                                  switches_failed={"b": "down", "c": "down",
                                                   "d": "down"})
        assert not health.healthy
        assert health.degradation is DegradationLevel.CRITICAL


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(FaultPlanError):
            FaultPlan().lossy_link("a", "b", 1.5)
        with pytest.raises(FaultPlanError):
            FaultPlan().flip_bits("a", num_flips=0)
        with pytest.raises(FaultPlanError):
            FaultPlan().stall_collection("a", delay=-1.0)
        with pytest.raises(FaultPlanError):
            FaultPlan().kill_switch("a", start_window=5, end_window=2)
        with pytest.raises(FaultPlanError):
            FaultPlan().kill_switch("a", start_window=-1)

    def test_window_ranges(self):
        plan = FaultPlan().kill_switch("s", start_window=2, end_window=4)
        assert plan.dead_switches(1) == frozenset()
        assert plan.dead_switches(2) == {"s"}
        assert plan.dead_switches(3) == {"s"}
        assert plan.dead_switches(4) == frozenset()

    def test_permanent_failure(self):
        plan = FaultPlan().kill_switch("s")
        assert "s" in plan.dead_switches(10_000)

    def test_link_loss_composes_and_normalizes_direction(self):
        plan = (FaultPlan().lossy_link("b", "a", 0.5)
                .lossy_link("a", "b", 0.5))
        assert plan.link_drop_fraction(("a", "b"), 0) == pytest.approx(0.75)

    def test_stall_clears_after_fail_attempts(self):
        plan = FaultPlan().stall_collection("s", delay=9.0, fail_attempts=2)
        assert plan.collection_delay("s", 0, 0) == 9.0
        assert plan.collection_delay("s", 0, 1) == 9.0
        assert plan.collection_delay("s", 0, 2) == 0.0

    def test_rng_is_deterministic_per_context(self):
        plan = FaultPlan(seed=42)
        a = plan.rng("link", "a", "b", 7, 0).integers(0, 1 << 30, 8)
        b = plan.rng("link", "a", "b", 7, 0).integers(0, 1 << 30, 8)
        c = plan.rng("link", "a", "b", 7, 1).integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_thin_count_deterministic_and_bounded(self):
        injector = FaultInjector(FaultPlan(seed=1).lossy_link("a", "b", 0.4))
        survived = injector.thin_count(("a", "b"), 99, 1000, 0)
        assert survived == injector.thin_count(("a", "b"), 99, 1000, 0)
        assert 0 <= survived <= 1000
        # Unaffected link passes everything through.
        assert injector.thin_count(("a", "c"), 99, 1000, 0) == 1000

    def test_bit_flip_corrupts_counters_once_per_window(self):
        plan = FaultPlan(seed=5).flip_bits("leaf0", num_flips=3, max_bit=8)
        injector = FaultInjector(plan)
        switch = SimulatedSwitch("leaf0", memory_bytes=16 * 1024)
        switch.forward(np.arange(100, dtype=np.uint64))
        before = [t.leaf_totals.copy() for t in switch.sketch.trees]
        assert injector.corrupt_switch(switch, 0) == 3
        after = [t.leaf_totals for t in switch.sketch.trees]
        assert any(not np.array_equal(b, a) for b, a in zip(before, after))
        # Second application in the same window is a no-op.
        assert injector.corrupt_switch(switch, 0) == 0


class TestEMGuards:
    @pytest.fixture()
    def sketch(self):
        sketch = FCMSketch.with_memory(16 * 1024, seed=3)
        sketch.ingest(zipf_trace(5_000, alpha=1.3, seed=9).keys)
        return sketch

    def test_clean_run_does_not_fall_back(self, sketch):
        outcome = guarded_estimate_distribution(sketch, iterations=3)
        assert not outcome.fell_back
        assert outcome.reason is None
        assert np.all(np.isfinite(outcome.result.size_counts))
        assert outcome.result.total_flows > 0

    def test_nan_triggers_histogram_fallback(self, sketch):
        estimator = EMEstimator(convert_sketch(sketch))
        estimator._iterate = \
            lambda n_j, executor=None: np.full_like(n_j, np.nan)
        outcome = guarded_em_run(estimator)
        assert outcome.fell_back
        assert "non-finite" in outcome.reason
        assert outcome.result.iterations == 0  # pre-EM histogram
        assert np.all(np.isfinite(outcome.result.size_counts))
        assert outcome.result.total_flows > 0

    def test_runaway_mass_triggers_fallback(self, sketch):
        estimator = EMEstimator(convert_sketch(sketch))
        estimator._iterate = \
            lambda n_j, executor=None: n_j * 1e6 + 1.0
        outcome = guarded_em_run(
            estimator, guard=EMGuardConfig(divergence_factor=10.0))
        assert outcome.fell_back
        assert "outside" in outcome.reason

    def test_iteration_cap(self, sketch):
        estimator = EMEstimator(convert_sketch(sketch))
        outcome = guarded_em_run(estimator,
                                 guard=EMGuardConfig(max_iterations=2),
                                 iterations=50)
        assert not outcome.fell_back
        assert outcome.result.iterations == 2

    def test_convergence_tolerance_stops_early(self, sketch):
        from repro.core.em import EMConfig
        estimator = EMEstimator(convert_sketch(sketch),
                                config=EMConfig(max_iterations=30,
                                                convergence_tol=0.5))
        result = estimator.run()
        assert result.converged
        assert result.iterations < 30


class TestCollectorGuards:
    def _factory(self):
        return lambda: FCMSketch.with_memory(16 * 1024, seed=1)

    def test_rejects_nonpositive_windows(self):
        collector = SketchCollector(self._factory())
        trace = Trace(np.arange(10, dtype=np.uint64))
        for bad in (0, -2):
            with pytest.raises(InvalidWindowError):
                collector.process(trace, num_windows=bad)
            with pytest.raises(ValueError):  # back-compat contract
                collector.process(trace, num_windows=bad)

    def test_empty_trace_yields_empty_healthy_reports(self):
        collector = SketchCollector(self._factory(), run_em=True)
        reports = collector.process(
            Trace(np.array([], dtype=np.uint64)), num_windows=3)
        assert len(reports) == 3
        for report in reports:
            assert report.total_packets == 0
            assert report.cardinality_estimate == 0.0
            assert report.distribution is None  # EM never ran
            assert report.healthy

    def test_more_windows_than_packets(self):
        collector = SketchCollector(self._factory())
        trace = Trace(np.array([5, 5], dtype=np.uint64))
        reports = collector.process(trace, num_windows=4)
        assert len(reports) == 4
        assert sum(r.total_packets for r in reports) == 2
        assert all(r.healthy for r in reports)

    def test_nonempty_windows_report_health(self):
        collector = SketchCollector(self._factory())
        trace = Trace(np.arange(1000, dtype=np.uint64))
        reports = collector.process(trace, num_windows=2)
        assert all(r.health is not None and r.health.healthy
                   for r in reports)
