"""Tests for byte-count (weighted) operation (§3.3's 'counts can be
interpreted as bytes')."""

import numpy as np
import pytest

from repro.core import FCMSketch
from repro.sketches import CountMinSketch
from repro.traffic import caida_like_trace
from repro.traffic.packet_sizes import IMIX, imix_sizes, uniform_sizes
from repro.traffic.stats import GroundTruth


class TestPacketSizes:
    def test_imix_sizes_valid(self):
        sizes = imix_sizes(10_000, seed=1)
        allowed = {s for s, _ in IMIX}
        assert set(np.unique(sizes)) <= allowed

    def test_imix_mixture_proportions(self):
        sizes = imix_sizes(50_000, seed=2)
        small = float(np.mean(sizes == 40))
        assert 0.5 < small < 0.65  # 7/12 ~ 0.583

    def test_imix_deterministic(self):
        assert np.array_equal(imix_sizes(1000, seed=3),
                              imix_sizes(1000, seed=3))

    def test_uniform_sizes(self):
        assert uniform_sizes(5, 100).tolist() == [100] * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            imix_sizes(0)
        with pytest.raises(ValueError):
            uniform_sizes(5, 0)


class TestWeightedGroundTruth:
    def test_byte_totals(self):
        keys = np.array([1, 1, 2])
        weights = np.array([100, 200, 50])
        gt = GroundTruth.from_packets(keys, weights)
        assert gt.flow_sizes == {1: 300, 2: 50}
        assert gt.total_packets == 350

    def test_alignment_check(self):
        with pytest.raises(ValueError):
            GroundTruth.from_packets(np.array([1, 2]), np.array([1]))


class TestWeightedSketches:
    def test_fcm_byte_mode_matches_repeated_updates(self):
        keys = np.array([7, 8, 7], dtype=np.uint64)
        weights = np.array([10, 5, 3], dtype=np.int64)
        weighted = FCMSketch.with_memory(8 * 1024, seed=1)
        weighted.ingest_weighted(keys, weights)
        unweighted = FCMSketch.with_memory(8 * 1024, seed=1)
        unweighted.update(7, 13)
        unweighted.update(8, 5)
        assert weighted.query(7) == unweighted.query(7) == 13
        assert weighted.query(8) == unweighted.query(8) == 5

    def test_fcm_byte_heavy_hitter(self):
        """A flow of few large packets must be found as a byte heavy
        hitter even though it is small in packet counts."""
        trace = caida_like_trace(num_packets=30_000, seed=71)
        keys = np.concatenate([
            trace.keys, np.full(50, 1234, dtype=np.uint64)
        ])
        weights = np.concatenate([
            uniform_sizes(len(trace), 40),
            uniform_sizes(50, 1500),
        ])
        sketch = FCMSketch.with_memory(64 * 1024, seed=1)
        sketch.ingest_weighted(keys, weights)
        gt = GroundTruth.from_packets(keys, weights)
        byte_threshold = 60_000
        reported = sketch.heavy_hitters(gt.keys_array(), byte_threshold)
        assert 1234 in reported

    def test_fcm_never_underestimates_bytes(self):
        trace = caida_like_trace(num_packets=20_000, seed=72)
        weights = imix_sizes(len(trace), seed=4)
        sketch = FCMSketch.with_memory(128 * 1024, seed=2)
        sketch.ingest_weighted(trace.keys, weights)
        gt = GroundTruth.from_packets(trace.keys, weights)
        est = sketch.query_many(gt.keys_array())
        # Last-stage saturation is possible in byte mode; cap truth.
        capacity = (sum(sketch.config.counting_ranges[:-1])
                    + sketch.config.sentinels[-1])
        assert np.all(est >= np.minimum(gt.sizes_array(), capacity))

    def test_cm_generic_weighted_path(self):
        cm = CountMinSketch(8 * 1024, seed=3)
        keys = np.array([1, 2, 1], dtype=np.uint64)
        cm.ingest_weighted(keys, np.array([5, 7, 5]))
        assert cm.query(1) == 10
        assert cm.query(2) == 7

    def test_weighted_validation(self):
        cm = CountMinSketch(4096)
        with pytest.raises(ValueError):
            cm.ingest_weighted(np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError):
            cm.ingest_weighted(np.array([1]), np.array([-1]))
