"""Parallel EM control plane: bit-exact differential suite + chaos.

§7.3.2: each EM iteration's response step decomposes over independent
``(tree, degree-group)`` units.  The contract under test is stronger
than statistical equivalence — with ``EMConfig.workers > 1`` the
estimate must be **bit-identical** (``np.array_equal``, no tolerance)
to the serial run, because both paths compute the same unit partials
and reduce them in the same canonical float64 order.  The chaos case
SIGKILLs a worker mid-run and requires the failover to serial to leave
the result unchanged.
"""

import os
import signal

import numpy as np
import pytest

from repro.core import FCMConfig, FCMSketch
from repro.core.em import EMConfig, EMEstimator
from repro.core.em_parallel import (
    EMUnit,
    EMWorkerPool,
    build_units,
    unit_partial,
)
from repro.core.tree import FCMTree
from repro.core.virtual import VirtualCounterArray, convert_sketch
from repro.errors import WorkerPoolError
from repro.hashing import HashFamily
from repro.telemetry import MemoryExporter, MetricsRegistry
from repro.traffic import zipf_trace

MEMORY = 16 * 1024


def zipf_arrays(seed=9, packets=20_000):
    sketch = FCMSketch.with_memory(MEMORY, seed=seed)
    sketch.ingest(zipf_trace(packets, alpha=1.2, seed=seed).keys)
    return convert_sketch(sketch)


def degree2_array() -> VirtualCounterArray:
    """Small-leaf tree whose counters merge (degree >= 2) while still
    landing inside the enumeration thresholds (same construction as
    test_em_degree2)."""
    cfg = FCMConfig(num_trees=1, k=2, stage_bits=(2, 4, 8),
                    stage_widths=(64, 32, 16))
    tree = FCMTree(cfg, HashFamily(3))
    rng = np.random.default_rng(5)
    tree.ingest(rng.integers(0, 120, size=3000, dtype=np.uint64))
    array = VirtualCounterArray.from_tree(tree)
    assert array.max_degree >= 2
    return array


def run_with_workers(arrays, workers, iterations=4, **cfg_kwargs):
    config = EMConfig(workers=workers, **cfg_kwargs)
    with EMEstimator(arrays, config) as estimator:
        return estimator.run(iterations=iterations)


def assert_bit_identical(a, b):
    assert np.array_equal(a.size_counts, b.size_counts)
    assert a.total_flows == b.total_flows
    assert a.iterations == b.iterations


# ----------------------------------------------------------------------
# unit decomposition
# ----------------------------------------------------------------------

class TestBuildUnits:
    def test_canonical_order_and_coverage(self):
        arrays = zipf_arrays()
        with EMEstimator(arrays) as est:
            units = est._units
        # Ascending (tree, degree, chunk): the reduction-order contract.
        keys = [(u.tree, u.degree, u.chunk) for u in units]
        assert keys == sorted(keys)
        assert [u.index for u in units] == list(range(len(units)))
        # Every enumerable group of every tree appears exactly once.
        total_groups = sum(len(w.groups) for w in est._work)
        assert sum(len(u.groups) for u in units) == total_groups

    def test_degree1_sketch_still_fans_out(self):
        """Chunking splits a degree-1-dominated sketch into multiple
        units, so the pool has parallel work even without collisions."""
        arrays = zipf_arrays()
        units = build_units(
            [w for w in EMEstimator(arrays)._work], chunk_groups=8)
        per_tree = {}
        for u in units:
            per_tree[u.tree] = per_tree.get(u.tree, 0) + 1
        assert all(n >= 2 for n in per_tree.values())

    def test_unit_partial_pure_in_log_n(self):
        arrays = zipf_arrays()
        with EMEstimator(arrays) as est:
            n0 = est.initial_guess()
            with np.errstate(divide="ignore"):
                log_n = np.log(n0)
            unit = est._units[0]
            a = unit_partial(unit, log_n, est._size)
            b = unit_partial(unit, log_n, est._size)
        assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# bit-exact differential suite
# ----------------------------------------------------------------------

class TestBitExactness:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_multi_tree_zipf_matches_serial(self, workers):
        arrays = zipf_arrays()
        serial = run_with_workers(arrays, workers=1)
        parallel = run_with_workers(arrays, workers=workers)
        assert_bit_identical(serial, parallel)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_degree2_tree_matches_serial(self, workers):
        """Degree >= 2 groups exercise the enumerated posterior inside
        worker processes."""
        arrays = [degree2_array()]
        serial = run_with_workers(arrays, workers=1, iterations=5)
        parallel = run_with_workers(arrays, workers=workers, iterations=5)
        assert_bit_identical(serial, parallel)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_seeded_sketches_match_serial(self, seed):
        arrays = zipf_arrays(seed=seed, packets=10_000)
        serial = run_with_workers(arrays, workers=1, iterations=3)
        parallel = run_with_workers(arrays, workers=2, iterations=3)
        assert_bit_identical(serial, parallel)

    def test_small_chunks_agree_serial_vs_parallel(self):
        """The chunk size picks the float64 reduction grouping, so it
        is part of the contract: at any *fixed* chunk size, serial and
        parallel runs reduce identically."""
        arrays = zipf_arrays()
        serial = run_with_workers(arrays, workers=1, chunk_groups=4)
        fine = run_with_workers(arrays, workers=2, chunk_groups=4)
        assert_bit_identical(serial, fine)

    def test_repeat_runs_identical(self):
        arrays = zipf_arrays()
        with EMEstimator(arrays, EMConfig(workers=2)) as est:
            first = est.run(iterations=3)
            second = est.run(iterations=3)
        assert np.array_equal(first.size_counts, second.size_counts)


# ----------------------------------------------------------------------
# pool lifecycle
# ----------------------------------------------------------------------

class TestPoolLifecycle:
    def test_pool_reused_across_runs(self):
        arrays = zipf_arrays()
        with EMEstimator(arrays, EMConfig(workers=2)) as est:
            est.run(iterations=2)
            pids = est._pool.worker_pids()
            est.run(iterations=2)
            assert est._pool.worker_pids() == pids

    def test_close_is_idempotent_and_safe_before_run(self):
        arrays = zipf_arrays()
        est = EMEstimator(arrays, EMConfig(workers=2))
        est.close()
        est.close()

    def test_serial_config_never_spawns(self):
        arrays = zipf_arrays()
        with EMEstimator(arrays, EMConfig(workers=1)) as est:
            est.run(iterations=2)
            assert est._pool is None

    def test_pool_telemetry_gauges(self):
        arrays = zipf_arrays()
        telemetry = MetricsRegistry()
        with EMEstimator(arrays, EMConfig(workers=2),
                         telemetry=telemetry) as est:
            est.run(iterations=2)
            assert telemetry.gauge("em.parallel.workers").value == 2.0
            assert telemetry.gauge("em.parallel.units").value >= 2.0
        # close() reports the pool as gone.
        assert telemetry.gauge("em.parallel.workers").value == 0.0


# ----------------------------------------------------------------------
# chaos: worker death fails over to serial, result unchanged
# ----------------------------------------------------------------------

@pytest.mark.chaos
class TestFailover:
    def test_worker_killed_mid_run_result_bit_identical(self):
        arrays = zipf_arrays()
        serial = run_with_workers(arrays, workers=1, iterations=4)

        exporter = MemoryExporter()
        telemetry = MetricsRegistry(exporter=exporter)
        killed = []

        def assassin(iteration, _counts):
            if iteration == 1:
                victim = est._pool.worker_pids()[0]
                os.kill(victim, signal.SIGKILL)
                killed.append(victim)

        with EMEstimator(arrays, EMConfig(workers=2),
                         telemetry=telemetry) as est:
            survived = est.run(iterations=4, callback=assassin)
            assert killed and est.failed_over
            # Later runs stay serial (breaker, not flapping retry).
            again = est.run(iterations=4)
            assert est._pool is None

        assert_bit_identical(serial, survived)
        assert_bit_identical(serial, again)
        assert telemetry.counter("em.parallel.failovers").value == 1
        events = [e for e in exporter.events
                  if e.name == "em.parallel.failover"]
        assert len(events) == 1

    def test_dead_pool_raises_worker_pool_error(self):
        """The raw pool (no estimator breaker) surfaces worker death as
        WorkerPoolError rather than hanging until the timeout."""
        arrays = zipf_arrays()
        with EMEstimator(arrays) as est:
            units = est._units
            size = est._size
            n0 = est.initial_guess()
        with np.errstate(divide="ignore"):
            log_n = np.log(n0)
        pool = EMWorkerPool(units, size, num_workers=2, timeout=30.0)
        try:
            pool.iterate(log_n)
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(WorkerPoolError):
                pool.iterate(log_n)
        finally:
            pool.terminate()
