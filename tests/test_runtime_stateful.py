"""Stateful property tests for the epoch-streaming runtime.

A :class:`hypothesis.stateful.RuleBasedStateMachine` drives an
:class:`~repro.runtime.EpochManager` through random interleavings of
batch ingests, forced rotations and scoped queries, shadowed by an
exact per-epoch dict oracle.  Invariants checked after every rule:

* **no underestimate** — at every scope, the runtime's flow-size
  estimate is >= the oracle's exact count for that scope;
* **sealed epochs are immutable** — re-serializing a sealed epoch's
  rehydrated sketch reproduces the original codec bytes, no matter
  how many queries ran in between;
* **bounded retention** — the store never holds more than the
  configured number of epochs, and evictions are oldest-first;
* **zero-gap ledger** — the sum of sealed-epoch packet counts
  (including evicted epochs) plus the live epoch's count equals the
  total packets fed.
"""

import functools
from collections import Counter

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core import FCMSketch
from repro.runtime import EpochConfig, EpochManager, StreamingQueryAPI

RETENTION = 3

#: Small key universe so flows recur across epochs (exercises the
#: multi-epoch summation paths) and small memory so tests stay fast.
KEYS = st.integers(min_value=1, max_value=64)


def _sketch():
    return FCMSketch.with_memory(8 * 1024, seed=11)


FACTORY = functools.partial(_sketch)


class EpochRuntimeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.manager = EpochManager(
            FACTORY, config=EpochConfig(retention=RETENTION))
        self.api = StreamingQueryAPI(self.manager)
        self.live_oracle = Counter()
        self.sealed_oracles = []          # exact counts, one per epoch
        self.sealed_packets = []          # includes evicted epochs
        self.sealed_bytes = {}            # epoch index -> codec bytes
        self.fed = 0

    # -- rules ---------------------------------------------------------

    @rule(batch=st.lists(KEYS, max_size=60))
    def ingest(self, batch):
        self.manager.feed(np.asarray(batch, dtype=np.uint64))
        self.live_oracle.update(batch)
        self.fed += len(batch)

    @rule()
    def force_rotation(self):
        sealed = self.manager.rotate()
        self.sealed_oracles.append(self.live_oracle)
        self.sealed_packets.append(sealed.packets)
        self.sealed_bytes[sealed.index] = sealed.state
        self.live_oracle = Counter()

    @rule(key=KEYS)
    def query_live(self, key):
        assert self.api.query(key, scope="live") >= self.live_oracle[key]

    @precondition(lambda self: self.sealed_oracles)
    @rule(key=KEYS)
    def query_last_sealed(self, key):
        retained = self.sealed_oracles[-1]
        assert self.api.query(key, scope="sealed") >= retained[key]

    @precondition(lambda self: self.sealed_oracles)
    @rule(key=KEYS, n=st.integers(min_value=1, max_value=RETENTION))
    def query_last_n(self, key, n):
        n = min(n, len(self.manager.store))
        if n == 0:
            return
        exact = sum(o[key] for o in self.sealed_oracles[-n:])
        assert self.api.query(key, scope=f"last-{n}") >= exact

    @rule(key=KEYS)
    def query_all(self, key):
        retained = self.sealed_oracles[-len(self.manager.store):] \
            if len(self.manager.store) else []
        exact = sum(o[key] for o in retained) + self.live_oracle[key]
        assert self.api.query(key, scope="all") >= exact

    # -- invariants ----------------------------------------------------

    @invariant()
    def retention_bounded(self):
        store = self.manager.store
        assert len(store) <= RETENTION
        assert store.evicted == max(0, len(self.sealed_oracles)
                                    - len(store))
        indices = [e.index for e in store]
        assert indices == sorted(indices)

    @invariant()
    def ledger_exact(self):
        assert self.manager.packets_fed == self.fed
        assert sum(self.sealed_packets) + self.manager.live_packets \
            == self.fed
        # per-epoch packet totals match the oracle exactly
        for epoch, oracle in zip(
                self.manager.store,
                self.sealed_oracles[-len(self.manager.store):]
                if len(self.manager.store) else []):
            assert epoch.packets == sum(oracle.values())

    @invariant()
    def sealed_epochs_immutable(self):
        for epoch in self.manager.store:
            assert self.sealed_bytes[epoch.index] == epoch.state
            assert epoch.sketch().to_state() == epoch.state


EpochRuntimeMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None)

TestEpochRuntime = EpochRuntimeMachine.TestCase
