"""Differential harness: every frequency sketch vs an exact oracle.

One seeded Zipf packet stream, one exact dict oracle built
independently of the library's ground-truth plumbing, and these
cross-sketch contracts checked uniformly:

* deterministic overestimate-only sketches never report below the
  oracle count,
* ``query_many`` equals the scalar ``query`` elementwise,
* bulk ``ingest`` honours the sketch's *declared* equivalence
  contract (``INGEST_CONTRACT`` / ``INGEST_GUARANTEES``, see
  :mod:`repro.sketches.batching`): ``exact`` sketches must match the
  per-packet ``update`` loop bit-for-bit in stream order; ``relaxed``
  sketches must match the loop over the flow-grouped reordering of
  the batch bit-for-bit, and keep their tagged invariants (e.g.
  no-underestimate) — checked over duplicate-heavy, collision-forced
  and shuffled batch shapes,
* ``merge`` of two half-stream sketches equals one sketch that
  ingested the concatenated stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FCMSketch, FCMTopK
from repro.sketches import (
    ColdFilterSketch,
    CountMinSketch,
    CountSketch,
    CUSketch,
    ElasticSketch,
    HashPipe,
)
from repro.sketches.batching import (
    EXACT,
    HEAVY_ORDER,
    KEY_ORDER,
    NO_UNDERESTIMATE,
    RELAXED,
    REORDER_EQUIVALENT,
    flow_grouped_reordering,
)
from repro.traffic import zipf_trace

MEMORY = 64 * 1024
PACKETS = 20_000
SEED = 3

FACTORIES = {
    "fcm": lambda: FCMSketch.with_memory(MEMORY, seed=SEED),
    "cm": lambda: CountMinSketch(MEMORY, seed=SEED),
    "cu": lambda: CUSketch(MEMORY, seed=SEED),
    "countsketch": lambda: CountSketch(MEMORY, seed=SEED),
    "elastic": lambda: ElasticSketch(MEMORY, seed=SEED),
    "coldfilter": lambda: ColdFilterSketch(MEMORY, seed=SEED),
    "fcm_topk": lambda: FCMTopK(MEMORY, seed=SEED),
    "hashpipe": lambda: HashPipe(MEMORY, seed=SEED),
}

#: Sketches whose estimate is a deterministic upper bound.  CountSketch
#: (median of signed rows) is unbiased, Elastic's 8-bit light part
#: saturates, and HashPipe reports 0 for evicted flows, so those may
#: undercount by design.
NEVER_UNDERESTIMATES = ["fcm", "cm", "cu", "coldfilter", "fcm_topk"]

#: Sketches exposing a lossless ``merge``.
MERGEABLE = ["fcm", "cm", "countsketch"]

#: Small sketches make intra-batch cell collisions (the conflict-
#: resolution slow path) unavoidable even on small key spaces.
SMALL_MEMORY = 4 * 1024


def _small_factory(name):
    return {
        "fcm": lambda: FCMSketch.with_memory(SMALL_MEMORY, seed=SEED),
        "cm": lambda: CountMinSketch(SMALL_MEMORY, seed=SEED),
        "cu": lambda: CUSketch(SMALL_MEMORY, seed=SEED),
        "countsketch": lambda: CountSketch(SMALL_MEMORY, seed=SEED),
        "elastic": lambda: ElasticSketch(SMALL_MEMORY, seed=SEED),
        "coldfilter": lambda: ColdFilterSketch(SMALL_MEMORY, seed=SEED),
        "fcm_topk": lambda: FCMTopK(SMALL_MEMORY, seed=SEED),
        "hashpipe": lambda: HashPipe(SMALL_MEMORY, seed=SEED),
    }[name]


#: Batch shapes exercising the conflict-resolution machinery from
#: different directions.  Each builder returns a uint64 packet batch.
def _batch_duplicate_heavy():
    """A handful of flows repeated thousands of times, interleaved."""
    rng = np.random.default_rng(11)
    return rng.permutation(np.repeat(
        np.arange(12, dtype=np.uint64) * 1_000_003, 900))


def _batch_collision_forced():
    """Many distinct keys in a tiny key space: at SMALL_MEMORY nearly
    every flow shares counter cells with another flow in the batch,
    driving the scalar conflict-resolution fallback."""
    rng = np.random.default_rng(12)
    return (rng.integers(0, 700, size=9_000)).astype(np.uint64)


def _batch_shuffled_zipf():
    """A shuffled heavy-tailed stream (the realistic mixed case)."""
    rng = np.random.default_rng(13)
    keys = zipf_trace(8_000, alpha=1.2, seed=13).keys
    return rng.permutation(keys)


def _batch_singletons():
    """Every key appears exactly once (no intra-flow grouping win)."""
    rng = np.random.default_rng(14)
    return rng.permutation(np.arange(5_000, dtype=np.uint64) * 97 + 5)


BATCHES = {
    "duplicate_heavy": _batch_duplicate_heavy,
    "collision_forced": _batch_collision_forced,
    "shuffled_zipf": _batch_shuffled_zipf,
    "singletons": _batch_singletons,
}


@pytest.fixture(scope="module")
def stream():
    return zipf_trace(PACKETS, alpha=1.3, seed=SEED).keys


@pytest.fixture(scope="module")
def oracle(stream):
    """Exact per-flow counts, recomputed from the raw packet stream."""
    uniq, counts = np.unique(stream, return_counts=True)
    return {int(k): int(c) for k, c in zip(uniq, counts)}


@pytest.mark.parametrize("name", NEVER_UNDERESTIMATES)
def test_never_underestimates(name, stream, oracle):
    sketch = FACTORIES[name]()
    sketch.ingest(stream)
    keys = np.fromiter(oracle, dtype=np.uint64)
    estimates = sketch.query_many(keys)
    for key, est in zip(keys, estimates):
        assert est >= oracle[int(key)], (
            f"{name} underestimated flow {key}: "
            f"{est} < {oracle[int(key)]}"
        )


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_query_many_matches_scalar_query(name, stream, oracle):
    sketch = FACTORIES[name]()
    sketch.ingest(stream)
    keys = np.fromiter(oracle, dtype=np.uint64)
    many = np.asarray(sketch.query_many(keys))
    for key, est in zip(keys, many):
        assert int(est) == sketch.query(int(key)), (
            f"{name}.query_many disagrees with query on flow {key}"
        )


def _state_of(sketch):
    """Raw counter/table arrays — bit-level equality, not just queries."""
    return {k: np.asarray(v).copy()
            for k, v in sketch._state_arrays().items()}


def _assert_same_state(a, b, msg):
    sa, sb = _state_of(a), _state_of(b)
    assert sorted(sa) == sorted(sb), msg
    for field in sa:
        np.testing.assert_array_equal(sa[field], sb[field],
                                      err_msg=f"{msg} (field {field!r})")


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_declared_contract_is_wellformed(name):
    """The contract attributes the harness relies on are coherent."""
    sketch = FACTORIES[name]()
    assert sketch.INGEST_CONTRACT in (EXACT, RELAXED)
    if sketch.INGEST_CONTRACT == EXACT:
        assert sketch.INGEST_RELAXATION is None
        assert sketch.INGEST_GUARANTEES == ()
    else:
        # Every relaxed sketch must document the relaxation and pin
        # itself to the canonical replay stream.
        assert isinstance(sketch.INGEST_RELAXATION, str)
        assert sketch.INGEST_RELAXATION
        assert REORDER_EQUIVALENT in sketch.INGEST_GUARANTEES
    assert sketch.INGEST_REPLAY_ORDER in (KEY_ORDER, HEAVY_ORDER)


@pytest.mark.parametrize("batch_name", sorted(BATCHES))
@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_ingest_honours_declared_contract(name, batch_name):
    """Bulk ``ingest`` vs the scalar ``update`` loop, bit-for-bit.

    ``exact`` sketches must reproduce the loop in stream order;
    ``relaxed`` sketches must reproduce the loop over
    ``flow_grouped_reordering`` of the batch (the canonical legal
    permutation their contract names).  Run at SMALL_MEMORY so the
    collision-forced batches actually exercise the conflict fallback.
    """
    batch = BATCHES[batch_name]()
    bulk = _small_factory(name)()
    bulk.ingest(batch)
    looped = _small_factory(name)()
    contract = looped.INGEST_CONTRACT
    replay = batch if contract == EXACT else flow_grouped_reordering(
        batch, order=looped.INGEST_REPLAY_ORDER)
    for key in replay:
        looped.update(int(key))
    _assert_same_state(
        bulk, looped,
        f"{name} ({contract}): bulk ingest != scalar loop over "
        f"{'stream order' if contract == EXACT else 'flow-grouped reordering'}"
        f" on batch {batch_name!r}")


@pytest.mark.parametrize("batch_name", sorted(BATCHES))
@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_ingest_keeps_no_underestimate_guarantee(name, batch_name):
    """Sketches tagged NO_UNDERESTIMATE must stay above the batch's
    exact per-flow counts after a bulk ingest, on every batch shape."""
    sketch = _small_factory(name)()
    if (sketch.INGEST_CONTRACT == EXACT
            and name not in NEVER_UNDERESTIMATES):
        pytest.skip(f"{name} does not claim an upper-bound estimate")
    if (sketch.INGEST_CONTRACT == RELAXED
            and NO_UNDERESTIMATE not in sketch.INGEST_GUARANTEES):
        pytest.skip(f"{name} does not tag NO_UNDERESTIMATE")
    batch = BATCHES[batch_name]()
    sketch.ingest(batch)
    uniq, true_counts = np.unique(batch, return_counts=True)
    estimates = np.asarray(sketch.query_many(uniq))
    low = estimates < true_counts
    assert not low.any(), (
        f"{name} underestimated {int(low.sum())} flows on batch "
        f"{batch_name!r} (e.g. flow {int(uniq[low][0])}: "
        f"{int(estimates[low][0])} < {int(true_counts[low][0])})")


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_relaxed_ingest_is_idempotent_requery(name, stream):
    """Querying after a bulk ingest must not mutate state: repeated
    ``query_many`` calls return identical answers."""
    sketch = FACTORIES[name]()
    sketch.ingest(stream)
    keys = np.unique(stream)
    first = np.asarray(sketch.query_many(keys)).copy()
    second = np.asarray(sketch.query_many(keys))
    np.testing.assert_array_equal(first, second,
                                  err_msg=f"{name}: query_many mutated state")


@pytest.mark.parametrize("name", MERGEABLE)
def test_merge_equals_concatenated_stream(name, stream, oracle):
    half = stream.shape[0] // 2
    left, right = FACTORIES[name](), FACTORIES[name]()
    left.ingest(stream[:half])
    right.ingest(stream[half:])
    left.merge(right)
    whole = FACTORIES[name]()
    whole.ingest(stream)
    keys = np.fromiter(oracle, dtype=np.uint64)
    np.testing.assert_array_equal(
        np.asarray(left.query_many(keys)),
        np.asarray(whole.query_many(keys)),
        err_msg=f"{name}: merge of halves != concatenated stream",
    )


@pytest.mark.parametrize("name", MERGEABLE)
def test_merge_rejects_mismatched_configuration(name):
    a = FACTORIES[name]()
    factories = {
        "fcm": lambda: FCMSketch.with_memory(MEMORY // 2, seed=SEED),
        "cm": lambda: CountMinSketch(MEMORY // 2, seed=SEED),
        "countsketch": lambda: CountSketch(MEMORY // 2, seed=SEED),
    }
    with pytest.raises(ValueError):
        a.merge(factories[name]())


def test_deterministic_sketches_track_oracle_closely(stream, oracle):
    """At 64 KB the FCM estimate should be near-exact on this stream —
    a guard against silently broken hashing rather than an accuracy
    benchmark."""
    sketch = FACTORIES["fcm"]()
    sketch.ingest(stream)
    keys = np.fromiter(oracle, dtype=np.uint64)
    truth = np.fromiter((oracle[int(k)] for k in keys), dtype=np.int64)
    estimates = np.asarray(sketch.query_many(keys))
    are = float(np.mean((estimates - truth) / truth))
    assert 0.0 <= are < 0.05
