"""Differential harness: every frequency sketch vs an exact oracle.

One seeded Zipf packet stream, one exact dict oracle built
independently of the library's ground-truth plumbing, and four
cross-sketch contracts checked uniformly:

* deterministic overestimate-only sketches never report below the
  oracle count,
* ``query_many`` equals the scalar ``query`` elementwise,
* bulk ``ingest`` equals a per-packet ``update`` loop (in stream
  order, so the contract also holds for order-dependent sketches like
  CU and the Top-K filters),
* ``merge`` of two half-stream sketches equals one sketch that
  ingested the concatenated stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FCMSketch, FCMTopK
from repro.sketches import (
    ColdFilterSketch,
    CountMinSketch,
    CountSketch,
    CUSketch,
    ElasticSketch,
)
from repro.traffic import zipf_trace

MEMORY = 64 * 1024
PACKETS = 20_000
SEED = 3

FACTORIES = {
    "fcm": lambda: FCMSketch.with_memory(MEMORY, seed=SEED),
    "cm": lambda: CountMinSketch(MEMORY, seed=SEED),
    "cu": lambda: CUSketch(MEMORY, seed=SEED),
    "countsketch": lambda: CountSketch(MEMORY, seed=SEED),
    "elastic": lambda: ElasticSketch(MEMORY, seed=SEED),
    "coldfilter": lambda: ColdFilterSketch(MEMORY, seed=SEED),
    "fcm_topk": lambda: FCMTopK(MEMORY, seed=SEED),
}

#: Sketches whose estimate is a deterministic upper bound.  CountSketch
#: (median of signed rows) is unbiased and Elastic's 8-bit light part
#: saturates, so both may undercount by design.
NEVER_UNDERESTIMATES = ["fcm", "cm", "cu", "coldfilter", "fcm_topk"]

#: Sketches exposing a lossless ``merge``.
MERGEABLE = ["fcm", "cm", "countsketch"]


@pytest.fixture(scope="module")
def stream():
    return zipf_trace(PACKETS, alpha=1.3, seed=SEED).keys


@pytest.fixture(scope="module")
def oracle(stream):
    """Exact per-flow counts, recomputed from the raw packet stream."""
    uniq, counts = np.unique(stream, return_counts=True)
    return {int(k): int(c) for k, c in zip(uniq, counts)}


@pytest.mark.parametrize("name", NEVER_UNDERESTIMATES)
def test_never_underestimates(name, stream, oracle):
    sketch = FACTORIES[name]()
    sketch.ingest(stream)
    keys = np.fromiter(oracle, dtype=np.uint64)
    estimates = sketch.query_many(keys)
    for key, est in zip(keys, estimates):
        assert est >= oracle[int(key)], (
            f"{name} underestimated flow {key}: "
            f"{est} < {oracle[int(key)]}"
        )


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_query_many_matches_scalar_query(name, stream, oracle):
    sketch = FACTORIES[name]()
    sketch.ingest(stream)
    keys = np.fromiter(oracle, dtype=np.uint64)
    many = np.asarray(sketch.query_many(keys))
    for key, est in zip(keys, many):
        assert int(est) == sketch.query(int(key)), (
            f"{name}.query_many disagrees with query on flow {key}"
        )


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_ingest_equals_update_loop(name, stream, oracle):
    bulk = FACTORIES[name]()
    bulk.ingest(stream)
    looped = FACTORIES[name]()
    for key in stream:
        looped.update(int(key))
    keys = np.fromiter(oracle, dtype=np.uint64)
    np.testing.assert_array_equal(
        np.asarray(bulk.query_many(keys)),
        np.asarray(looped.query_many(keys)),
        err_msg=f"{name}: bulk ingest != per-packet update loop",
    )


@pytest.mark.parametrize("name", MERGEABLE)
def test_merge_equals_concatenated_stream(name, stream, oracle):
    half = stream.shape[0] // 2
    left, right = FACTORIES[name](), FACTORIES[name]()
    left.ingest(stream[:half])
    right.ingest(stream[half:])
    left.merge(right)
    whole = FACTORIES[name]()
    whole.ingest(stream)
    keys = np.fromiter(oracle, dtype=np.uint64)
    np.testing.assert_array_equal(
        np.asarray(left.query_many(keys)),
        np.asarray(whole.query_many(keys)),
        err_msg=f"{name}: merge of halves != concatenated stream",
    )


@pytest.mark.parametrize("name", MERGEABLE)
def test_merge_rejects_mismatched_configuration(name):
    a = FACTORIES[name]()
    factories = {
        "fcm": lambda: FCMSketch.with_memory(MEMORY // 2, seed=SEED),
        "cm": lambda: CountMinSketch(MEMORY // 2, seed=SEED),
        "countsketch": lambda: CountSketch(MEMORY // 2, seed=SEED),
    }
    with pytest.raises(ValueError):
        a.merge(factories[name]())


def test_deterministic_sketches_track_oracle_closely(stream, oracle):
    """At 64 KB the FCM estimate should be near-exact on this stream —
    a guard against silently broken hashing rather than an accuracy
    benchmark."""
    sketch = FACTORIES["fcm"]()
    sketch.ingest(stream)
    keys = np.fromiter(oracle, dtype=np.uint64)
    truth = np.fromiter((oracle[int(k)] for k in keys), dtype=np.int64)
    estimates = np.asarray(sketch.query_many(keys))
    are = float(np.mean((estimates - truth) / truth))
    assert 0.0 <= are < 0.05
