"""Tests for the Top-K filter, FCM+TopK and ElasticSketch."""

import numpy as np
import pytest

from repro.core.topk import FCMTopK, TopKFilter
from repro.errors import SketchMemoryError
from repro.metrics import f1_score
from repro.sketches import ElasticSketch
from repro.traffic import caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return caida_like_trace(num_packets=60_000, seed=21)


class TestTopKFilter:
    def test_tracks_single_flow_exactly(self):
        filt = TopKFilter(entries_per_level=64)
        spilled = []
        for _ in range(10):
            filt.insert(5, lambda k, c: spilled.append((k, c)))
        assert filt.lookup(5) == (10, False)
        assert spilled == []

    def test_eviction_migrates_count(self):
        filt = TopKFilter(entries_per_level=1, lambda_ratio=2)
        spilled = []
        filt.insert(1, lambda k, c: spilled.append((k, c)))
        # First miss by key 2 is rejected to the sketch; the second
        # triggers eviction (2 >= 2 * 1) and migrates key 1's count.
        filt.insert(2, lambda k, c: spilled.append((k, c)))
        filt.insert(2, lambda k, c: spilled.append((k, c)))
        assert spilled == [(2, 1), (1, 1)]
        count, flagged = filt.lookup(2)
        assert flagged is True and count == 1

    def test_hardware_mode_inherits_count(self):
        filt = TopKFilter(entries_per_level=1, lambda_ratio=2,
                          migrate_on_evict=False)
        spilled = []
        filt.insert(1, lambda k, c: spilled.append((k, c)))
        filt.insert(2, lambda k, c: spilled.append((k, c)))
        filt.insert(2, lambda k, c: spilled.append((k, c)))
        # Only the rejected packet reached the sketch; the eviction
        # exported nothing (the PHV cannot carry the old pair out).
        assert spilled == [(2, 1)]
        count, _ = filt.lookup(2)
        assert count == 2  # inherited 1 + own 1

    def test_miss_goes_to_sketch(self):
        filt = TopKFilter(entries_per_level=1, lambda_ratio=100)
        spilled = []
        filt.insert(1, lambda k, c: spilled.append((k, c)))
        filt.insert(2, lambda k, c: spilled.append((k, c)))
        assert spilled == [(2, 1)]

    def test_resident_keys_and_entries(self):
        filt = TopKFilter(entries_per_level=32)
        for key in (1, 2, 3):
            filt.insert(key, lambda k, c: None)
        assert {k for k, _, _ in filt.entries()} == filt.resident_keys()

    def test_validation(self):
        with pytest.raises(ValueError):
            TopKFilter(entries_per_level=0)
        with pytest.raises(ValueError):
            TopKFilter(lambda_ratio=0)


class TestFCMTopK:
    def test_count_conservation(self, trace):
        """Every packet is either in the filter or in the sketch."""
        sk = FCMTopK(32 * 1024, seed=3)
        sk.ingest(trace.keys)
        resident = sum(c for _, c, _ in sk.topk.entries())
        assert resident + sk.fcm.total_packets == len(trace)

    def test_never_underestimates(self, trace):
        sk = FCMTopK(32 * 1024, seed=3)
        sk.ingest(trace.keys)
        gt = trace.ground_truth
        est = sk.query_many(gt.keys_array())
        assert np.all(est >= gt.sizes_array())

    def test_query_many_matches_scalar(self, trace):
        sk = FCMTopK(32 * 1024, seed=3)
        sk.ingest(trace.keys)
        keys = trace.ground_truth.keys_array()[:150]
        vec = sk.query_many(keys)
        for i, k in enumerate(keys):
            assert vec[i] == sk.query(int(k))

    def test_heavy_hitters_strong(self, trace):
        sk = FCMTopK(32 * 1024, seed=3)
        sk.ingest(trace.keys)
        threshold = trace.heavy_hitter_threshold()
        truth = trace.ground_truth.heavy_hitters(threshold)
        reported = sk.heavy_hitters(trace.ground_truth.keys_array(),
                                    threshold)
        assert f1_score(reported, truth) > 0.95

    def test_cardinality(self, trace):
        sk = FCMTopK(32 * 1024, seed=3)
        sk.ingest(trace.keys)
        truth = trace.ground_truth.cardinality
        assert sk.cardinality() == pytest.approx(truth, rel=0.1)

    def test_budget_too_small_for_filter(self):
        with pytest.raises(SketchMemoryError):
            FCMTopK(1024, topk_entries=4096)

    def test_hardware_mode_mostly_overestimates(self, trace):
        """Hardware eviction re-attributes the incumbent's count to the
        new key, so *evicted* flows can be underestimated — but that
        must stay a small minority (Figure 13's 'small increase')."""
        sk = FCMTopK(32 * 1024, hardware=True, seed=3)
        sk.ingest(trace.keys)
        gt = trace.ground_truth
        est = sk.query_many(gt.keys_array())
        under = float(np.mean(est < gt.sizes_array()))
        assert under < 0.05

    def test_update_with_count(self):
        sk = FCMTopK(32 * 1024)
        sk.update(9, count=12)
        assert sk.query(9) == 12


class TestElasticSketch:
    def test_never_underestimates_unsaturated(self):
        """With an unsaturated light part Elastic over-estimates only."""
        small = caida_like_trace(num_packets=20_000, seed=5)
        es = ElasticSketch(64 * 1024, seed=2)
        es.ingest(small.keys)
        gt = small.ground_truth
        est = es.query_many(gt.keys_array())
        assert np.all(est >= np.minimum(gt.sizes_array(), 255))

    def test_heavy_flow_exact_in_heavy_part(self):
        es = ElasticSketch(64 * 1024)
        keys = np.concatenate([
            np.full(5000, 3, dtype=np.uint64),
            np.arange(100, 600, dtype=np.uint64),
        ])
        es.ingest(keys)
        # The heavy flow should reside in the Top-K part with most of
        # its count.
        assert es.query(3) >= 4500

    def test_heavy_hitters(self, trace):
        es = ElasticSketch(64 * 1024, seed=2)
        es.ingest(trace.keys)
        threshold = trace.heavy_hitter_threshold()
        truth = trace.ground_truth.heavy_hitters(threshold)
        reported = es.heavy_hitters(trace.ground_truth.keys_array(),
                                    threshold)
        assert f1_score(reported, truth) > 0.9

    def test_cardinality(self, trace):
        es = ElasticSketch(64 * 1024, seed=2)
        es.ingest(trace.keys)
        truth = trace.ground_truth.cardinality
        assert es.cardinality() == pytest.approx(truth, rel=0.15)

    def test_distribution_and_entropy(self, trace):
        es = ElasticSketch(64 * 1024, seed=2)
        es.ingest(trace.keys)
        result = es.estimate_distribution(iterations=4)
        assert result.total_flows == pytest.approx(
            trace.ground_truth.cardinality, rel=0.25
        )
        assert es.estimate_entropy() == pytest.approx(
            trace.ground_truth.entropy, rel=0.15
        )

    def test_memory_budget(self):
        es = ElasticSketch(64 * 1024)
        assert es.memory_bytes <= 64 * 1024

    def test_budget_too_small(self):
        with pytest.raises(SketchMemoryError):
            ElasticSketch(2048, entries_per_level=4096)
