"""Tests for flow keys, traces, ground truth and generators."""

import numpy as np
import pytest

from repro.traffic import (
    GroundTruth,
    Trace,
    caida_like_trace,
    merge_traces,
    pack_ipv4,
    split_windows,
    unpack_ipv4,
    zipf_flow_sizes,
    zipf_trace,
)
from repro.traffic.flow import FiveTuple
from repro.traffic.stats import entropy_from_distribution, entropy_from_sizes
from repro.traffic.zipf import calibrate_max_size, truncated_zipf_mean


class TestFlowKeys:
    def test_pack_unpack_roundtrip(self):
        for addr in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.77"):
            assert unpack_ipv4(pack_ipv4(addr)) == addr

    def test_pack_known_value(self):
        assert pack_ipv4("10.0.0.1") == 0x0A000001

    def test_pack_rejects_bad_octet(self):
        with pytest.raises(ValueError):
            pack_ipv4("256.0.0.1")

    def test_pack_rejects_short(self):
        with pytest.raises(ValueError):
            pack_ipv4("10.0.0")

    def test_unpack_rejects_oversized(self):
        with pytest.raises(ValueError):
            unpack_ipv4(1 << 32)

    def test_five_tuple_roundtrip(self):
        ft = FiveTuple(src_ip=0x0A000001, dst_ip=0x0A000002,
                       src_port=1234, dst_port=80, protocol=6)
        assert FiveTuple.from_key(ft.to_key()) == ft

    def test_five_tuple_validation(self):
        with pytest.raises(ValueError):
            FiveTuple(src_ip=1 << 32, dst_ip=0, src_port=0, dst_port=0,
                      protocol=6)
        with pytest.raises(ValueError):
            FiveTuple(src_ip=0, dst_ip=0, src_port=70000, dst_port=0,
                      protocol=6)


class TestGroundTruth:
    def test_from_packets(self):
        gt = GroundTruth.from_packets(np.array([1, 1, 2, 3, 3, 3]))
        assert gt.flow_sizes == {1: 2, 2: 1, 3: 3}
        assert gt.total_packets == 6
        assert gt.cardinality == 3

    def test_size_of_absent_flow(self):
        gt = GroundTruth.from_packets(np.array([5]))
        assert gt.size_of(99) == 0

    def test_size_distribution(self):
        gt = GroundTruth(flow_sizes={1: 2, 2: 2, 3: 5})
        assert gt.size_distribution() == {2: 2, 5: 1}

    def test_size_distribution_array(self):
        gt = GroundTruth(flow_sizes={1: 2, 2: 5})
        arr = gt.size_distribution_array()
        assert arr[2] == 1 and arr[5] == 1 and arr.sum() == 2

    def test_heavy_hitters(self):
        gt = GroundTruth(flow_sizes={1: 10, 2: 5, 3: 10})
        assert gt.heavy_hitters(10) == {1, 3}
        with pytest.raises(ValueError):
            gt.heavy_hitters(0)

    def test_heavy_changes(self):
        a = GroundTruth(flow_sizes={1: 100, 2: 5, 3: 50})
        b = GroundTruth(flow_sizes={1: 10, 2: 5, 4: 80})
        assert a.heavy_changes(b, 50) == {1, 3, 4}

    def test_keys_and_sizes_aligned(self):
        gt = GroundTruth.from_packets(np.array([7, 7, 9]))
        keys, sizes = gt.keys_array(), gt.sizes_array()
        mapping = dict(zip(keys.tolist(), sizes.tolist()))
        assert mapping == {7: 2, 9: 1}


class TestEntropy:
    def test_uniform_flows(self):
        # 4 flows of equal size: packet entropy = log2(4) = 2 bits.
        assert entropy_from_distribution({10: 4}) == pytest.approx(2.0)

    def test_single_flow_zero_entropy(self):
        assert entropy_from_distribution({100: 1}) == pytest.approx(0.0)

    def test_empty_distribution(self):
        assert entropy_from_distribution({}) == 0.0

    def test_matches_direct_computation(self):
        sizes = [1, 1, 2, 4]
        total = sum(sizes)
        expected = -sum((s / total) * np.log2(s / total) for s in sizes)
        assert entropy_from_sizes(sizes) == pytest.approx(expected)

    def test_ground_truth_entropy(self):
        gt = GroundTruth(flow_sizes={1: 4, 2: 4})
        assert gt.entropy == pytest.approx(1.0)


class TestTrace:
    def test_len_and_iter(self):
        trace = Trace([1, 2, 2, 3])
        assert len(trace) == 4
        assert list(trace) == [1, 2, 2, 3]

    def test_keys_read_only(self):
        trace = Trace([1, 2])
        with pytest.raises(ValueError):
            trace.keys[0] = 9

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Trace(np.zeros((2, 2)))

    def test_ground_truth_cached(self):
        trace = Trace([1, 1, 2])
        assert trace.ground_truth is trace.ground_truth
        assert trace.num_flows == 2

    def test_heavy_hitter_threshold(self):
        trace = Trace(np.zeros(20_000, dtype=np.uint64))
        assert trace.heavy_hitter_threshold(0.0005) == 10
        with pytest.raises(ValueError):
            trace.heavy_hitter_threshold(0.0)

    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace([5, 6, 6], name="t")
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert np.array_equal(loaded.keys, trace.keys)
        assert loaded.name == "t"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Trace.load(str(tmp_path / "absent.npz"))

    def test_merge(self):
        merged = merge_traces([Trace([1, 2]), Trace([3])])
        assert list(merged) == [1, 2, 3]
        with pytest.raises(ValueError):
            merge_traces([])

    def test_split_windows(self):
        trace = Trace(np.arange(10))
        windows = split_windows(trace, 3)
        assert sum(len(w) for w in windows) == 10
        assert len(windows) == 3
        with pytest.raises(ValueError):
            split_windows(trace, 0)
        with pytest.raises(ValueError):
            split_windows(trace, 11)


class TestZipfGenerator:
    def test_exact_packet_count(self):
        for n in (1000, 12_345):
            assert len(zipf_trace(n, 1.3, seed=1)) == n

    def test_deterministic(self):
        a = zipf_trace(5000, 1.2, seed=7)
        b = zipf_trace(5000, 1.2, seed=7)
        assert np.array_equal(a.keys, b.keys)

    def test_seed_changes_trace(self):
        a = zipf_trace(5000, 1.2, seed=1)
        b = zipf_trace(5000, 1.2, seed=2)
        assert not np.array_equal(a.keys, b.keys)

    def test_flow_sizes_bounded(self):
        rng = np.random.default_rng(0)
        sizes = zipf_flow_sizes(10_000, 1.5, 100, rng)
        assert sizes.min() >= 1 and sizes.max() <= 100

    def test_skew_orders_max_flow(self):
        """Lower skew with calibrated mean => smaller max flow size."""
        low = zipf_trace(100_000, 1.1, seed=3)
        high = zipf_trace(100_000, 1.7, seed=3)
        assert (low.ground_truth.sizes_array().max()
                < high.ground_truth.sizes_array().max())

    def test_calibrated_mean_near_target(self):
        trace = zipf_trace(200_000, 1.3, avg_flow_size=50.0, seed=5)
        mean = len(trace) / trace.num_flows
        assert 25 < mean < 100

    def test_truncated_zipf_mean_monotone_in_alpha(self):
        assert (truncated_zipf_mean(1.1, 1000)
                > truncated_zipf_mean(1.5, 1000))

    def test_calibrate_max_size(self):
        max_size = calibrate_max_size(1.3, 50.0)
        realized = truncated_zipf_mean(1.3, max_size)
        assert realized == pytest.approx(50.0, rel=0.05)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_trace(0, 1.3)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            zipf_flow_sizes(0, 1.3, 10, rng)
        with pytest.raises(ValueError):
            zipf_flow_sizes(10, 1.3, 0, rng)


class TestCaidaLikeGenerator:
    def test_exact_packet_count(self):
        assert len(caida_like_trace(num_packets=10_000, seed=2)) == 10_000

    def test_deterministic(self):
        a = caida_like_trace(num_packets=20_000, seed=4)
        b = caida_like_trace(num_packets=20_000, seed=4)
        assert np.array_equal(a.keys, b.keys)

    def test_heavy_tailed(self):
        trace = caida_like_trace(num_packets=200_000, seed=1)
        sizes = trace.ground_truth.sizes_array()
        # Mice dominate, elephants exist.
        assert np.median(sizes) <= 5
        assert sizes.max() > 1000

    def test_mean_near_target(self):
        trace = caida_like_trace(num_packets=300_000, avg_flow_size=40.0,
                                 seed=1)
        mean = len(trace) / trace.num_flows
        assert 20 < mean < 80

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            caida_like_trace(num_packets=0)
        with pytest.raises(ValueError):
            caida_like_trace(num_packets=10, mice_fraction=1.0)
