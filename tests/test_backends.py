"""The unified ``IngestBackend`` contract, its factory, and the shims.

One spec string — ``"kind[:shards]"`` — must build every ingest
backend, every backend must seal a state byte-identical to serial
ingest of the same packets, and the old constructor surfaces
(``EpochManager(num_shards=...)``, the CLI's ``--shards``) must keep
working behind ``DeprecationWarning`` shims.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.cli import _backend_spec
from repro.controlplane import ParallelSketchCollector
from repro.core import FCMSketch
from repro.engine import (
    BACKEND_KINDS,
    EngineBackend,
    InlineBackend,
    NetworkBackend,
    PoolBackend,
    make_backend,
    parse_backend_spec,
)
from repro.network import NetworkSimulator, leaf_spine
from repro.runtime import EpochConfig, EpochManager
from repro.traffic import zipf_trace

MEMORY = 16 * 1024


def fcm_factory():
    return FCMSketch.with_memory(MEMORY, seed=3)


def serial_state(keys):
    sketch = fcm_factory()
    sketch.ingest(keys)
    return sketch.to_state()


@pytest.fixture(scope="module")
def keys():
    return zipf_trace(20_000, alpha=1.2, seed=7).keys


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------

class TestParseBackendSpec:
    @pytest.mark.parametrize("spec,expected", [
        ("inline", ("inline", None)),
        ("sharded", ("sharded", None)),
        ("process:4", ("process", 4)),
        ("pool:2", ("pool", 2)),
        ("shm:3", ("pool", 3)),       # alias
        (" Pool:2 ", ("pool", 2)),    # whitespace + case
        ("network", ("network", None)),
    ])
    def test_valid_specs(self, spec, expected):
        assert parse_backend_spec(spec) == expected

    @pytest.mark.parametrize("spec", [
        "", "   ", None, 7, "threads", "pool:x", "pool:0", "pool:-1",
        "pool:2:3",
    ])
    def test_invalid_specs_fail_loudly(self, spec):
        with pytest.raises(ValueError):
            parse_backend_spec(spec)


# ----------------------------------------------------------------------
# the factory
# ----------------------------------------------------------------------

class TestMakeBackend:
    @pytest.mark.parametrize("spec,cls", [
        ("inline", InlineBackend),
        ("sharded:2", EngineBackend),
        ("process:2", EngineBackend),
        ("pool:2", PoolBackend),
        ("shm:2", PoolBackend),
    ])
    def test_every_local_kind_constructs(self, spec, cls):
        with make_backend(spec, sketch_factory=fcm_factory) as backend:
            assert isinstance(backend, cls)
            info = backend.describe()
            assert info["kind"] in BACKEND_KINDS
            assert backend.spec.split(":")[0] == info["kind"]

    def test_network_kind_constructs_from_collector(self):
        sim = NetworkSimulator(leaf_spine(4, 2), memory_bytes=MEMORY)
        collector = ParallelSketchCollector(sim)
        with make_backend("network", collector=collector) as backend:
            assert isinstance(backend, NetworkBackend)
            assert backend.describe()["kind"] == "network"

    def test_spec_shard_count_wins_over_kwarg(self):
        with make_backend("pool:3", sketch_factory=fcm_factory,
                          num_shards=8) as backend:
            assert backend.spec == "pool:3"

    def test_missing_dependencies_are_errors(self):
        with pytest.raises(ValueError):
            make_backend("pool:2")  # no sketch_factory
        with pytest.raises(ValueError):
            make_backend("network", sketch_factory=fcm_factory)

    def test_network_spec_rejects_shard_suffix_gracefully(self):
        # A shard count on 'network' parses (and is ignored), matching
        # the documented "inline and network ignore both" contract.
        assert parse_backend_spec("network:4") == ("network", 4)


# ----------------------------------------------------------------------
# equivalence: every backend seals the serial state, byte for byte
# ----------------------------------------------------------------------

ALL_LOCAL_SPECS = ("inline", "sharded:3", "process:2", "pool:2")


class TestBackendEquivalence:
    @pytest.mark.parametrize("spec", ALL_LOCAL_SPECS)
    def test_seal_matches_serial(self, keys, spec):
        expected = serial_state(keys)
        with make_backend(spec, sketch_factory=fcm_factory) as backend:
            for start in range(0, keys.shape[0], 4096):
                backend.ingest_batch(keys[start:start + 4096])
            assert backend.seal(0) == expected
            assert backend.last_sealed_sketch.to_state() == expected

    @pytest.mark.parametrize("spec", ALL_LOCAL_SPECS)
    def test_seal_resets_for_the_next_epoch(self, keys, spec):
        first, second = np.array_split(keys, 2)
        with make_backend(spec, sketch_factory=fcm_factory) as backend:
            backend.ingest_batch(first)
            assert backend.seal(0) == serial_state(first)
            backend.ingest_batch(second)
            assert backend.seal(1) == serial_state(second)

    @pytest.mark.parametrize("spec", ALL_LOCAL_SPECS)
    def test_peek_and_merge_into_mid_epoch(self, keys, spec):
        half = keys[: keys.shape[0] // 2]
        with make_backend(spec, sketch_factory=fcm_factory) as backend:
            backend.ingest_batch(half)
            assert backend.peek().to_state() == serial_state(half)
            target = backend.merge_into(fcm_factory())
            assert target.to_state() == serial_state(half)
            # peek/merge_into are read-only: the epoch still seals
            # exactly (the post-seal consistency contract).
            assert backend.seal(0) == serial_state(half)

    def test_network_backend_seals_switch_states(self, keys):
        sim = NetworkSimulator(leaf_spine(4, 2), memory_bytes=MEMORY)
        collector = ParallelSketchCollector(sim)
        with make_backend("network", collector=collector) as backend:
            backend.ingest_batch(keys[:8_000])
            blob = backend.seal(0)
            assert isinstance(blob, bytes)
            assert backend.last_report is not None
            assert backend.last_states
            assert blob == backend.last_states[backend.em_switch]


# ----------------------------------------------------------------------
# deprecation shims: the old surfaces still work, but warn
# ----------------------------------------------------------------------

class TestDeprecationShims:
    def test_epoch_manager_num_shards_warns_and_folds(self):
        with pytest.deprecated_call():
            manager = EpochManager(
                fcm_factory, config=EpochConfig(epoch_packets=5_000),
                backend="process", num_shards=2)
        try:
            assert manager.backend_spec == "process:2"
        finally:
            manager.close()

    def test_spec_shard_count_beats_deprecated_num_shards(self):
        with pytest.deprecated_call():
            manager = EpochManager(
                fcm_factory, config=EpochConfig(epoch_packets=5_000),
                backend="process:4", num_shards=2)
        try:
            assert manager.backend_spec == "process:4"
        finally:
            manager.close()

    def test_cli_shards_flag_warns_and_folds(self):
        with pytest.deprecated_call():
            spec = _backend_spec(SimpleNamespace(backend="process",
                                                 shards=4))
        assert spec == "process:4"
        with pytest.deprecated_call():
            spec = _backend_spec(SimpleNamespace(backend="pool:2",
                                                 shards=4))
        assert spec == "pool:2"  # explicit spec wins

    def test_cli_without_shards_stays_silent(self, recwarn):
        assert _backend_spec(
            SimpleNamespace(backend="pool:2", shards=None)) == "pool:2"
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


# ----------------------------------------------------------------------
# EpochManager accepts a prebuilt backend instance
# ----------------------------------------------------------------------

def test_epoch_manager_accepts_backend_instance(keys):
    backend = make_backend("pool:2", sketch_factory=fcm_factory)
    manager = EpochManager(fcm_factory,
                           config=EpochConfig(epoch_packets=5_000),
                           backend=backend)
    try:
        assert manager.backend is backend
        assert manager.backend_spec == "pool:2"
        manager.feed(keys[:10_000])
        assert len(manager.store) == 2
        assert manager.store[-1].packets == 5_000
    finally:
        manager.close()
